// Concurrency experiment: read-path throughput of the sharded query
// pipeline as analyst goroutines scale, against the seed's architecture —
// one global mutex around the whole session (the exact serialization the
// pre-pipeline server used). Both systems run the same warmed, partitioned
// session shape, so the measured gap is the locking architecture, not the
// cache contents.

package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/tree"
)

// DefaultWorkers is the goroutine ladder the scaling experiment climbs
// when the Scale does not override it (turbo-bench -parallel).
var DefaultWorkers = []int{1, 2, 4, 8}

// scalingQueries bounds the measured work per ladder rung.
const scalingQueries = 60000

// scalingReps re-measures each rung and keeps the best run, damping
// scheduler noise (the experiment often shares its host).
const scalingReps = 3

// distinctScalingQueries is the size of the repeated query set; repeats
// land in the exact caches, which is the steady state the paper's runtime
// evaluation (Fig. 11d) shows dominating skewed workloads.
const distinctScalingQueries = 192

// Scaling measures queries/second over goroutine counts for the sharded
// pipeline and for a globally-locked session, reporting both curves plus
// the sharded-over-global speedup.
func Scaling(sc Scale) (Result, error) {
	if sc.Batch > 0 {
		// turbo-bench -batch=N: drive the HTTP server through
		// /query/batch instead of the in-process session, comparing
		// singleton and batched clients (scaling_http.go).
		return scalingHTTP(sc)
	}
	workers := sc.Workers
	if len(workers) == 0 {
		workers = DefaultWorkers
	}
	env, err := NewCovidEnv(sc, 31)
	if err != nil {
		return Result{}, err
	}
	queries, err := windowed(env, distinctScalingQueries, 1)
	if err != nil {
		return Result{}, err
	}

	maxShards := runtime.NumCPU()
	for _, w := range workers {
		if w > maxShards {
			maxShards = w
		}
	}
	sharded, err := scalingSession(env, sc, maxShards)
	if err != nil {
		return Result{}, err
	}
	locked, err := scalingSession(env, sc, 1)
	if err != nil {
		return Result{}, err
	}
	// The global-mutex baseline reproduces the seed server: one lock
	// around every Answer call.
	var gmu sync.Mutex
	globalAnswer := func(q *query.Query) error {
		gmu.Lock()
		defer gmu.Unlock()
		_, err := locked.Answer(q)
		return err
	}
	shardedAnswer := func(q *query.Query) error {
		_, err := sharded.Answer(q)
		return err
	}

	// Warm both sessions serially so the measured phase is the steady
	// state: exact hits plus occasional histogram work.
	for _, q := range queries {
		if err := shardedAnswer(q); err != nil {
			return Result{}, fmt.Errorf("warm sharded: %w", err)
		}
		if err := globalAnswer(q); err != nil {
			return Result{}, fmt.Errorf("warm global: %w", err)
		}
	}

	var shardedQPS, globalQPS, speedup Series
	shardedQPS.Name, globalQPS.Name, speedup.Name = "sharded-qps", "global-mutex-qps", "speedup-x"
	for _, w := range workers {
		sq, err := bestThroughput(shardedAnswer, queries, w)
		if err != nil {
			return Result{}, err
		}
		gq, err := bestThroughput(globalAnswer, queries, w)
		if err != nil {
			return Result{}, err
		}
		x := float64(w)
		shardedQPS.Points = append(shardedQPS.Points, Point{X: x, Y: sq})
		globalQPS.Points = append(globalQPS.Points, Point{X: x, Y: gq})
		speedup.Points = append(speedup.Points, Point{X: x, Y: sq / gq})
	}

	return Result{
		Name:   "scaling",
		XLabel: "goroutines",
		YLabel: "queries/sec",
		Series: []Series{shardedQPS, globalQPS, speedup},
		Notes: []string{
			fmt.Sprintf("%d-partition Covid, %d distinct windowed queries, %d measured per rung",
				env.DS.Partitions(), distinctScalingQueries, scalingQueries),
			fmt.Sprintf("sharded session: %d shards; baseline: one mutex around the session (seed architecture)", maxShards),
			fmt.Sprintf("GOMAXPROCS=%d", runtime.GOMAXPROCS(0)),
		},
	}, nil
}

// scalingSession builds the partitioned session the scaling study drives.
func scalingSession(env *Env, sc Scale, shards int) (*core.Session, error) {
	return core.NewSession(core.Config{
		Mode:  core.Partitioned,
		Alpha: env.Alpha, Beta: env.Beta, EpsilonGlobal: 50,
		Tau:            env.Tau,
		Structure:      tree.Binary,
		NodeExactCache: true,
		Seed:           71,
		MCSamples:      sc.MCSamples,
		Shards:         shards,
	}, env.DS)
}

// bestThroughput measures a rung scalingReps times and keeps the best.
func bestThroughput(answer func(*query.Query) error, pool []*query.Query, w int) (float64, error) {
	best := 0.0
	for r := 0; r < scalingReps; r++ {
		q, err := throughput(answer, pool, w, scalingQueries)
		if err != nil {
			return 0, err
		}
		if q > best {
			best = q
		}
	}
	return best, nil
}

// throughput fires total queries from the pool across w goroutines and
// returns queries per second.
func throughput(answer func(*query.Query) error, pool []*query.Query, w, total int) (float64, error) {
	per := total / w
	var wg sync.WaitGroup
	errs := make(chan error, w)
	start := time.Now()
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := answer(pool[(g*per+i)%len(pool)]); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	if err := <-errs; err != nil {
		return 0, err
	}
	return float64(per*w) / elapsed.Seconds(), nil
}
