package bench

import (
	"strings"
	"testing"
)

func tiny() Scale {
	// Long enough for the C0=100 Covid heuristic to reach its free phase
	// (the paper's workloads are 35K-300K queries).
	return Scale{
		Name:    "tiny",
		Queries: 12000, PartitionedQueries: 800,
		Weeks:     8,
		CovidRows: 400_000, CitiBikeRows: 400_000,
		MCSamples:   1500,
		Checkpoints: 8,
	}
}

func TestResultHelpers(t *testing.T) {
	r := Result{
		Name: "x", XLabel: "q", YLabel: "b",
		Series: []Series{
			{Name: "a", Points: []Point{{1, 10}, {2, 20}}},
			{Name: "b", Points: []Point{{1, 5}, {2, 4}}},
		},
	}
	if r.SeriesByName("a").Last() != 20 {
		t.Fatal("Last")
	}
	if r.SeriesByName("zzz").Name != "zzz" {
		t.Fatal("missing series fallback")
	}
	// b's final 4 vs best-other 20 → improvement 5×.
	if got := r.Improvement("b"); got != 5 {
		t.Fatalf("Improvement = %g", got)
	}
	if (Series{}).Last() != 0 {
		t.Fatal("empty Last")
	}
	if (Result{}).Improvement("a") != 0 {
		t.Fatal("empty Improvement")
	}
	var sb strings.Builder
	if err := r.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"# x", "a", "b", "20", "4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("fig3"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	seen := map[string]bool{}
	for _, e := range Experiments {
		if e.Name == "" || e.Paper == "" || e.Run == nil {
			t.Fatalf("malformed experiment %+v", e)
		}
		if seen[e.Name] {
			t.Fatalf("duplicate experiment %q", e.Name)
		}
		seen[e.Name] = true
	}
}

func TestEnvDefaultsMatchPaper(t *testing.T) {
	sc := tiny()
	covid, err := NewCovidEnv(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if covid.Alpha != 0.05 || covid.Beta != 0.001 || covid.EpsG != 10 {
		t.Fatal("covid accuracy defaults")
	}
	if covid.C0 != 100 || covid.S0 != 5 || covid.Tau != 0.05 {
		t.Fatal("covid §6.1 defaults")
	}
	if covid.PC0 != 50 || covid.PS0 != 1 {
		t.Fatal("covid §6.3 partitioned defaults")
	}
	cb, err := NewCitiBikeEnv(sc, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if cb.C0 != 5 || cb.S0 != 1 || cb.Tau != 0.01 || cb.LRStart != 0.5 {
		t.Fatal("citibike §6.1 defaults")
	}
}

func TestFig3ShapeTiny(t *testing.T) {
	// The core qualitative claim at any scale: PMW-Bypass ends below both
	// direct Laplace and vanilla PMW, and vanilla PMW is the worst early.
	r, err := Fig3(tiny())
	if err != nil {
		t.Fatal(err)
	}
	bypass := r.SeriesByName("pmw-bypass").Last()
	lap := r.SeriesByName("laplace").Last()
	vanilla := r.SeriesByName("pmw").Last()
	if bypass >= lap {
		t.Fatalf("pmw-bypass %g not below laplace %g", bypass, lap)
	}
	if bypass >= vanilla {
		t.Fatalf("pmw-bypass %g not below vanilla pmw %g", bypass, vanilla)
	}
	early := r.SeriesByName("pmw").Points[1].Y
	earlyByp := r.SeriesByName("pmw-bypass").Points[1].Y
	if early <= earlyByp {
		t.Fatalf("vanilla pmw early spend %g not above bypass %g", early, earlyByp)
	}
}

func TestFig8aShapeTiny(t *testing.T) {
	r, err := Fig8a(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if imp := r.Improvement("turbo"); imp <= 1 {
		t.Fatalf("turbo improvement = %g, want > 1", imp)
	}
}

func TestFig10aShapeTiny(t *testing.T) {
	r, err := Fig10a(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if imp := r.Improvement("turbo"); imp <= 1 {
		t.Fatalf("turbo improvement = %g, want > 1", imp)
	}
}

func TestFig11aShapeTiny(t *testing.T) {
	r, err := Fig11a(tiny())
	if err != nil {
		t.Fatal(err)
	}
	warm := r.SeriesByName("turbo-warm").Last()
	cold := r.SeriesByName("turbo-cold").Last()
	ec := r.SeriesByName("exact-cache").Last()
	if warm > ec {
		t.Fatalf("turbo-warm %g above exact-cache %g", warm, ec)
	}
	if warm > cold*1.1 {
		t.Fatalf("warm-start %g notably worse than cold %g", warm, cold)
	}
}

func TestFig11dRuns(t *testing.T) {
	sc := tiny()
	sc.Queries = 800
	r, err := Fig11d(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 2 {
		t.Fatalf("series = %d", len(r.Series))
	}
	for _, s := range r.Series {
		if len(s.Points) == 0 {
			t.Fatalf("no runtime points for %s", s.Name)
		}
	}
}

func TestMemoryRuns(t *testing.T) {
	r, err := Memory(tiny())
	if err != nil {
		t.Fatal(err)
	}
	pts := r.Series[0].Points
	if len(pts) != 2 || pts[0].Y <= 0 || pts[1].Y <= 0 {
		t.Fatalf("memory points = %v", pts)
	}
	// CitiBike (N=1200) must dominate Covid (N=128) as §6.5 reports.
	if pts[1].Y <= pts[0].Y {
		t.Fatalf("citibike memory %g not above covid %g", pts[1].Y, pts[0].Y)
	}
}

func TestAppendixCRuns(t *testing.T) {
	r, err := AppendixC(tiny())
	if err != nil {
		t.Fatal(err)
	}
	an := r.SeriesByName("analytic-crossover").Points
	if len(an) != 3 {
		t.Fatal("analytic series incomplete")
	}
	// |X|=128 → ≈146; crossover grows with domain size.
	if an[0].Y < 120 || an[0].Y > 170 {
		t.Fatalf("crossover for 128 = %g, want ≈146", an[0].Y)
	}
	if !(an[0].Y < an[1].Y && an[1].Y < an[2].Y) {
		t.Fatal("crossover not increasing in |X|")
	}
	sim := r.SeriesByName("simulated-crossover-n128").Points
	if len(sim) != 1 || sim[0].Y <= 0 {
		t.Fatalf("simulation did not find a crossover: %v", sim)
	}
}
