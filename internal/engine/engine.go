// Package engine is a miniature DP SQL engine in the mould of Tumult
// Core/Analytics (§5 of the Turbo paper): analysts evaluate query
// expressions against a session that compiles them into measurements —
// self-describing DP computations that report the privacy budget they
// consume — and a core that executes measurements and deducts their cost
// from a privacy accountant.
//
// The package exists to demonstrate the paper's light-touch integration
// claim: the turbo adapter (turbo.go) adds Turbo caching to this engine by
// defining three extra measurement types (non-private evaluation for SV
// checks, noise-only evaluation reusing a true result, and consume-only
// accounting for SV resets) without modifying any engine code — exactly
// the strategy turbo-tumult uses on Tumult (Fig. 7a).
package engine

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/accountant"
	"repro/internal/dataset"
	"repro/internal/noise"
	"repro/internal/query"
)

// Measurement is a DP computation over the store: Tumult's core
// abstraction. Evaluate returns the released value; Cost reports the
// pure-DP budget the core must deduct before evaluation.
type Measurement interface {
	Evaluate(ds *dataset.Dataset, rng *noise.Rng) (float64, error)
	Cost() float64
	// Describe names the measurement for logs and errors.
	Describe() string
}

// Core executes measurements and enforces the global guarantee — the
// Tumult Core role. It is deliberately ignorant of caching.
type Core struct {
	ds   *dataset.Dataset
	acct *accountant.Filter
	rng  *noise.Rng

	evaluated int
}

// NewCore creates a core over ds enforcing a global ε_G.
func NewCore(ds *dataset.Dataset, epsG float64, seed uint64) *Core {
	return &Core{ds: ds, acct: accountant.NewFilter(epsG), rng: noise.NewRng(seed)}
}

// Evaluate deducts the measurement's cost, then runs it. A measurement
// whose cost cannot be paid is not executed.
func (c *Core) Evaluate(m Measurement) (float64, error) {
	if err := c.acct.Pay(m.Cost()); err != nil {
		return 0, fmt.Errorf("engine: %s: %w", m.Describe(), err)
	}
	c.evaluated++
	return m.Evaluate(c.ds, c.rng)
}

// Spent returns the consumed global budget.
func (c *Core) Spent() float64 { return c.acct.Spent() }

// Remaining returns the unconsumed global budget.
func (c *Core) Remaining() float64 { return c.acct.Remaining() }

// Dataset exposes the underlying store (the engine owns it; Turbo only
// reaches it through measurements).
func (c *Core) Dataset() *dataset.Dataset { return c.ds }

// Evaluated returns the number of measurements executed.
func (c *Core) Evaluated() int { return c.evaluated }

// LaplaceCount is the engine's native measurement: a linear counting
// query released through the Laplace mechanism at budget Eps.
type LaplaceCount struct {
	Query *query.Query
	Eps   float64
}

// Cost implements Measurement.
func (m LaplaceCount) Cost() float64 { return m.Eps }

// Describe implements Measurement.
func (m LaplaceCount) Describe() string { return "laplace-count" }

// Evaluate implements Measurement.
func (m LaplaceCount) Evaluate(ds *dataset.Dataset, rng *noise.Rng) (float64, error) {
	if m.Eps <= 0 {
		return 0, errors.New("engine: laplace-count needs positive epsilon")
	}
	start, end := windowOf(m.Query, ds)
	truth, err := ds.TrueFraction(m.Query, start, end)
	if err != nil {
		return 0, err
	}
	n, err := ds.NRows(start, end)
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, errors.New("engine: empty data view")
	}
	return truth + rng.Laplace(1/(m.Eps*float64(n))), nil
}

func windowOf(q *query.Query, ds *dataset.Dataset) (int, int) {
	if s, e, ok := q.Window(); ok {
		return s, e
	}
	return 0, ds.Partitions() - 1
}

// Session is the analyst-facing layer — the Tumult Analytics role. It
// compiles query expressions into measurements with budget calibrated
// from the session's accuracy target and evaluates them through the core.
type Session struct {
	core        *Core
	alpha, beta float64
}

// NewSession opens an analyst session with a per-query accuracy target.
func NewSession(core *Core, alpha, beta float64) (*Session, error) {
	if core == nil {
		return nil, errors.New("engine: nil core")
	}
	if alpha <= 0 || alpha >= 1 || beta <= 0 || beta >= 1 {
		return nil, fmt.Errorf("engine: bad accuracy target (%g,%g)", alpha, beta)
	}
	return &Session{core: core, alpha: alpha, beta: beta}, nil
}

// Core returns the session's core.
func (s *Session) Core() *Core { return s.core }

// Accuracy returns the session's (α, β) target.
func (s *Session) Accuracy() (alpha, beta float64) { return s.alpha, s.beta }

// Evaluate compiles q into the engine's native Laplace measurement at the
// calibrated budget and runs it. This is what analysts get without Turbo.
func (s *Session) Evaluate(q *query.Query) (float64, error) {
	start, end := windowOf(q, s.core.ds)
	n, err := s.core.ds.NRows(start, end)
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, errors.New("engine: empty data view")
	}
	eps := noise.EpsilonForAccuracy(s.alpha, s.beta, n)
	return s.core.Evaluate(LaplaceCount{Query: q, Eps: eps})
}

// The three measurement extensions turbo needs (§5 "Turbo-Tumult"),
// defined without modifying Core or Session:

// npCount evaluates a query without noise and reports zero cost. Only the
// Turbo adapter constructs it, and only to feed SV checks — its result is
// never released (the safety argument of §5).
type npCount struct {
	q *query.Query
}

// Cost implements Measurement: non-private evaluation consumes nothing
// (it is internal post-processing fodder, not a release).
func (m npCount) Cost() float64 { return 0 }

// Describe implements Measurement.
func (m npCount) Describe() string { return "np-count" }

// Evaluate implements Measurement.
func (m npCount) Evaluate(ds *dataset.Dataset, _ *noise.Rng) (float64, error) {
	start, end := windowOf(m.q, ds)
	return ds.TrueFraction(m.q, start, end)
}

// noiseOnly re-noises an already-computed true result, avoiding a second
// data scan when the SV check already fetched the truth.
type noiseOnly struct {
	q          *query.Query
	eps        float64
	trueResult float64
}

// Cost implements Measurement.
func (m noiseOnly) Cost() float64 { return m.eps }

// Describe implements Measurement.
func (m noiseOnly) Describe() string { return "noise-only" }

// Evaluate implements Measurement.
func (m noiseOnly) Evaluate(ds *dataset.Dataset, rng *noise.Rng) (float64, error) {
	start, end := windowOf(m.q, ds)
	n, err := ds.NRows(start, end)
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, errors.New("engine: empty data view")
	}
	return m.trueResult + rng.Laplace(1/(m.eps*float64(n))), nil
}

// consumeOnly performs no computation and just burns budget — how the
// Turbo adapter charges SV initializations through the engine's
// accountant (the PrivacyAccountant.consume of Fig. 7b).
type consumeOnly struct {
	eps float64
}

// Cost implements Measurement.
func (m consumeOnly) Cost() float64 { return m.eps }

// Describe implements Measurement.
func (m consumeOnly) Describe() string { return "consume-only" }

// Evaluate implements Measurement.
func (m consumeOnly) Evaluate(*dataset.Dataset, *noise.Rng) (float64, error) {
	return math.NaN(), nil
}
