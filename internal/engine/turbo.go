// The Turbo adapter: adds Turbo caching to the engine the way
// turbo-tumult adds it to Tumult (§5) — a new session type that routes
// supported linear queries through turbo-lib, implementing the Turbo API
// (Fig. 7b) over the engine's measurement primitives, and fails over to
// plain engine evaluation for everything else.

package engine

import (
	"errors"
	"fmt"

	"repro/internal/heuristic"
	"repro/internal/noise"
	"repro/internal/pmw"
	"repro/internal/query"
)

// TurboSession wraps an engine Session with a PMW-Bypass cache. Analysts
// keep the same Evaluate interface; supported queries may be answered
// from the histogram for free, and unsupported ones transparently fall
// back to the engine ("fail-to-Tumult", §5).
type TurboSession struct {
	inner *Session
	cache *pmw.PMW

	// Supported reports whether a query can take the Turbo path;
	// overridable for tests. The default accepts every whole-store
	// linear query (the non-partitioned turbo-lib scope of §5).
	Supported func(q *query.Query) bool

	turboAnswered int
	failedOver    int
}

// enginePayer implements pmw.Payer by submitting consume-only
// measurements — the engine's accountant stays the single source of truth
// for the global guarantee.
type enginePayer struct {
	core *Core
	eps  float64
}

func (p enginePayer) PayLaplace() error {
	_, err := p.core.Evaluate(consumeOnly{eps: p.eps})
	return err
}

func (p enginePayer) PaySVInit() error {
	_, err := p.core.Evaluate(consumeOnly{eps: 3 * p.eps})
	return err
}

func (p enginePayer) HasBudget() bool { return p.core.Remaining() > 0 }

// engineExecutor implements pmw.Executor over the engine's measurements:
// True runs the zero-cost non-private measurement; DP runs noise-only
// with zero *extra* accounting because the PMW already paid through the
// payer (mirroring how turbo-tumult splits payment from execution).
type engineExecutor struct {
	core *Core
}

func (e engineExecutor) True(q *query.Query) (float64, error) {
	return e.core.Evaluate(npCount{q: q})
}

func (e engineExecutor) DP(q *query.Query, eps float64, trueResult float64) (float64, error) {
	if trueResult != trueResult { // NaN: the bypass branch has no truth yet
		var err error
		trueResult, err = e.core.Evaluate(npCount{q: q})
		if err != nil {
			return 0, err
		}
	}
	// The PMW paid `eps` already via the payer, so the noise-only
	// measurement is submitted at zero reported cost.
	return noiseOnly{q: q, eps: eps, trueResult: trueResult}.Evaluate(e.core.ds, e.core.rng)
}

// NewTurboSession attaches Turbo to an engine session. Heuristic and lr
// may be nil for the package defaults.
func NewTurboSession(inner *Session, heur heuristic.Heuristic, lr pmw.Schedule, tau float64, seed uint64) (*TurboSession, error) {
	if inner == nil {
		return nil, errors.New("engine: nil inner session")
	}
	n := inner.core.ds.NRowsAll()
	if n == 0 {
		return nil, errors.New("engine: empty dataset")
	}
	alpha, beta := inner.Accuracy()
	eps := noise.EpsilonForAccuracy(alpha, beta, n)
	p, err := pmw.New(pmw.Config{
		Alpha: alpha, Beta: beta, N: n,
		DomainSize: inner.core.ds.Domain().Size(),
		Tau:        tau, LR: lr, Heuristic: heur,
	},
		engineExecutor{core: inner.core},
		enginePayer{core: inner.core, eps: eps},
		noise.NewRng(seed))
	if err != nil {
		return nil, fmt.Errorf("engine: wiring turbo: %w", err)
	}
	ts := &TurboSession{inner: inner, cache: p}
	ts.Supported = func(q *query.Query) bool {
		_, _, windowed := q.Window()
		return !windowed // turbo-lib scope: whole-store linear queries
	}
	return ts, nil
}

// Evaluate answers q through Turbo when supported, otherwise through the
// plain engine path. The analyst-visible contract is unchanged.
func (t *TurboSession) Evaluate(q *query.Query) (float64, error) {
	if !t.Supported(q) {
		t.failedOver++
		return t.inner.Evaluate(q)
	}
	res, err := t.cache.Run(q)
	if err != nil {
		return 0, err
	}
	t.turboAnswered++
	return res.Value, nil
}

// Stats reports how many queries took each route.
func (t *TurboSession) Stats() (turbo, failedOver int) { return t.turboAnswered, t.failedOver }

// PMW exposes the underlying cache for inspection.
func (t *TurboSession) PMW() *pmw.PMW { return t.cache }
