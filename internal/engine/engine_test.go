package engine

import (
	"errors"
	"math"
	"testing"

	"repro/internal/accountant"
	"repro/internal/dataset"
	"repro/internal/domain"
	"repro/internal/heuristic"
	"repro/internal/noise"
	"repro/internal/pmw"
	"repro/internal/query"
)

func build(t *testing.T) (*domain.Domain, *dataset.Dataset) {
	t.Helper()
	dom := domain.MustNew(
		domain.Attribute{Name: "p", Card: 2},
		domain.Attribute{Name: "a", Card: 4},
	)
	ds := dataset.New(dom, 2)
	for w := 0; w < 2; w++ {
		for a := 0; a < 4; a++ {
			_ = ds.AddCount(w, dom.Encode([]int{1, a}), 1000+100*a)
			_ = ds.AddCount(w, dom.Encode([]int{0, a}), 4000-150*a)
		}
	}
	return dom, ds
}

func TestCoreDeductsBeforeEvaluating(t *testing.T) {
	dom, ds := build(t)
	core := NewCore(ds, 1.0, 1)
	q := query.MustNew(dom, map[int][]int{0: {1}})
	if _, err := core.Evaluate(LaplaceCount{Query: q, Eps: 0.4}); err != nil {
		t.Fatal(err)
	}
	if core.Spent() != 0.4 {
		t.Fatalf("Spent = %g", core.Spent())
	}
	// A measurement whose cost busts the guarantee is not executed.
	before := core.Evaluated()
	if _, err := core.Evaluate(LaplaceCount{Query: q, Eps: 0.7}); !errors.Is(err, accountant.ErrBudgetExhausted) {
		t.Fatalf("err = %v", err)
	}
	if core.Evaluated() != before {
		t.Fatal("unpaid measurement was executed")
	}
	if core.Spent() != 0.4 {
		t.Fatal("failed payment deducted")
	}
}

func TestLaplaceCountAccuracy(t *testing.T) {
	dom, ds := build(t)
	core := NewCore(ds, 1000, 2)
	q := query.MustNew(dom, map[int][]int{0: {1}})
	truth, _ := ds.TrueFraction(q, 0, 1)
	n := ds.NRowsAll()
	eps := noise.EpsilonForAccuracy(0.05, 0.001, n)
	bad := 0
	for i := 0; i < 200; i++ {
		r, err := core.Evaluate(LaplaceCount{Query: q, Eps: eps})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r-truth) > 0.05 {
			bad++
		}
	}
	if bad > 2 {
		t.Fatalf("%d/200 outside α", bad)
	}
}

func TestLaplaceCountErrors(t *testing.T) {
	dom, ds := build(t)
	core := NewCore(ds, 10, 3)
	q := query.MustNew(dom, nil)
	if _, err := core.Evaluate(LaplaceCount{Query: q, Eps: 0}); err == nil {
		t.Fatal("eps=0 accepted")
	}
	empty := dataset.New(dom, 1)
	core2 := NewCore(empty, 10, 3)
	if _, err := core2.Evaluate(LaplaceCount{Query: q, Eps: 0.1}); err == nil {
		t.Fatal("empty view accepted")
	}
}

func TestSessionCalibratesBudget(t *testing.T) {
	dom, ds := build(t)
	core := NewCore(ds, 1000, 4)
	sess, err := NewSession(core, 0.05, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	q := query.MustNew(dom, map[int][]int{0: {1}})
	if _, err := sess.Evaluate(q); err != nil {
		t.Fatal(err)
	}
	want := noise.EpsilonForAccuracy(0.05, 0.001, ds.NRowsAll())
	if math.Abs(core.Spent()-want) > 1e-12 {
		t.Fatalf("spent %g, want calibrated %g", core.Spent(), want)
	}
	// Windowed queries evaluate against the windowed view's n.
	qw := q.WithWindow(0, 0)
	spentBefore := core.Spent()
	if _, err := sess.Evaluate(qw); err != nil {
		t.Fatal(err)
	}
	n0, _ := ds.NRows(0, 0)
	wantW := noise.EpsilonForAccuracy(0.05, 0.001, n0)
	if math.Abs(core.Spent()-spentBefore-wantW) > 1e-12 {
		t.Fatal("windowed calibration wrong")
	}
}

func TestSessionValidation(t *testing.T) {
	if _, err := NewSession(nil, 0.05, 0.001); err == nil {
		t.Fatal("nil core accepted")
	}
	_, ds := build(t)
	core := NewCore(ds, 10, 5)
	if _, err := NewSession(core, 0, 0.001); err == nil {
		t.Fatal("bad alpha accepted")
	}
	if _, err := NewSession(core, 0.05, 1); err == nil {
		t.Fatal("bad beta accepted")
	}
}

func TestTurboSessionSavesBudget(t *testing.T) {
	// The integration claim: the same engine, via TurboSession, answers a
	// correlated workload with far less budget than plain evaluation.
	dom, dsA := build(t)
	_, dsB := build(t)

	plainCore := NewCore(dsA, 1000, 6)
	plain, _ := NewSession(plainCore, 0.05, 0.001)

	turboCore := NewCore(dsB, 1000, 6)
	inner, _ := NewSession(turboCore, 0.05, 0.001)
	ts, err := NewTurboSession(inner,
		heuristic.NewAdaptivePerBin(2, 1), pmw.Constant(0.2), 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}

	var qs []*query.Query
	for p := 0; p < 2; p++ {
		for a := 0; a < 4; a++ {
			qs = append(qs, query.MustNew(dom, map[int][]int{0: {p}, 1: {a}}))
		}
	}
	for round := 0; round < 8; round++ {
		for _, q := range qs {
			if _, err := plain.Evaluate(q); err != nil {
				t.Fatal(err)
			}
			if _, err := ts.Evaluate(q); err != nil {
				t.Fatal(err)
			}
		}
	}
	if turboCore.Spent() >= plainCore.Spent() {
		t.Fatalf("turbo %g did not beat plain %g", turboCore.Spent(), plainCore.Spent())
	}
	turboN, failed := ts.Stats()
	if turboN == 0 || failed != 0 {
		t.Fatalf("stats = %d, %d", turboN, failed)
	}
	if ts.PMW().Stats().R1 == 0 {
		t.Fatal("turbo session never hit the free path")
	}
}

func TestTurboSessionAnswersAccurately(t *testing.T) {
	dom, ds := build(t)
	core := NewCore(ds, 1000, 8)
	inner, _ := NewSession(core, 0.05, 0.001)
	ts, err := NewTurboSession(inner, heuristic.NewAdaptivePerBin(2, 1), pmw.Constant(0.2), 0.25, 9)
	if err != nil {
		t.Fatal(err)
	}
	q := query.MustNew(dom, map[int][]int{0: {1}})
	truth, _ := ds.TrueFraction(q, 0, 1)
	bad := 0
	for i := 0; i < 200; i++ {
		r, err := ts.Evaluate(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r-truth) > 0.05 {
			bad++
		}
	}
	if bad > 2 {
		t.Fatalf("%d/200 turbo answers outside α", bad)
	}
}

func TestTurboSessionFailsOver(t *testing.T) {
	dom, ds := build(t)
	core := NewCore(ds, 1000, 10)
	inner, _ := NewSession(core, 0.05, 0.001)
	ts, err := NewTurboSession(inner, nil, nil, 0.25, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Windowed queries are outside the adapter's default scope: they must
	// still be answered, through the engine.
	q := query.MustNew(dom, map[int][]int{0: {1}}).WithWindow(0, 0)
	truth, _ := ds.TrueFraction(q, 0, 0)
	r, err := ts.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-truth) > 0.05 {
		t.Fatalf("failed-over answer %g vs %g", r, truth)
	}
	_, failed := ts.Stats()
	if failed != 1 {
		t.Fatalf("failedOver = %d", failed)
	}
	if core.Spent() == 0 {
		t.Fatal("fail-over path consumed nothing")
	}
}

func TestTurboSessionRespectsEngineGuarantee(t *testing.T) {
	dom, ds := build(t)
	core := NewCore(ds, 1e-9, 12) // essentially no budget
	inner, _ := NewSession(core, 0.05, 0.001)
	ts, err := NewTurboSession(inner, nil, nil, 0.25, 13)
	if err != nil {
		t.Fatal(err)
	}
	q := query.MustNew(dom, map[int][]int{0: {1}})
	if _, err := ts.Evaluate(q); !errors.Is(err, accountant.ErrBudgetExhausted) {
		t.Fatalf("err = %v", err)
	}
	if core.Spent() != 0 {
		t.Fatal("refused query consumed budget")
	}
}

func TestTurboSessionValidation(t *testing.T) {
	if _, err := NewTurboSession(nil, nil, nil, 0.25, 1); err == nil {
		t.Fatal("nil inner accepted")
	}
	dom := domain.MustNew(domain.Attribute{Name: "x", Card: 2})
	empty := dataset.New(dom, 1)
	core := NewCore(empty, 10, 1)
	inner, _ := NewSession(core, 0.05, 0.001)
	if _, err := NewTurboSession(inner, nil, nil, 0.25, 1); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestMeasurementDescriptions(t *testing.T) {
	dom, _ := build(t)
	q := query.MustNew(dom, nil)
	for _, m := range []Measurement{
		LaplaceCount{Query: q, Eps: 0.1},
		npCount{q: q},
		noiseOnly{q: q, eps: 0.1},
		consumeOnly{eps: 0.1},
	} {
		if m.Describe() == "" {
			t.Fatalf("%T has empty description", m)
		}
	}
	// npCount is free; consumeOnly costs what it says.
	if (npCount{q: q}).Cost() != 0 {
		t.Fatal("np measurement must report zero cost")
	}
	if (consumeOnly{eps: 0.3}).Cost() != 0.3 {
		t.Fatal("consume-only cost wrong")
	}
}
