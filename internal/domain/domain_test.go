package domain

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func covid() *Domain {
	return MustNew(
		Attribute{Name: "positive", Card: 2, Levels: []string{"negative", "positive"}},
		Attribute{Name: "age", Card: 4},
		Attribute{Name: "gender", Card: 2},
		Attribute{Name: "ethnicity", Card: 8},
	)
}

func TestNewValidations(t *testing.T) {
	cases := []struct {
		name  string
		attrs []Attribute
	}{
		{"no attributes", nil},
		{"empty name", []Attribute{{Name: "", Card: 2}}},
		{"zero cardinality", []Attribute{{Name: "a", Card: 0}}},
		{"negative cardinality", []Attribute{{Name: "a", Card: -1}}},
		{"duplicate names", []Attribute{{Name: "a", Card: 2}, {Name: "a", Card: 3}}},
		{"levels mismatch", []Attribute{{Name: "a", Card: 3, Levels: []string{"x"}}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := New(c.attrs...); err == nil {
				t.Fatalf("New(%v) succeeded, want error", c.attrs)
			}
		})
	}
}

func TestSizeOverflow(t *testing.T) {
	attrs := make([]Attribute, 8)
	for i := range attrs {
		attrs[i] = Attribute{Name: string(rune('a' + i)), Card: 1 << 10}
	}
	if _, err := New(attrs...); err == nil {
		t.Fatal("expected overflow error for 2^80 domain")
	}
}

func TestSizeAndStrides(t *testing.T) {
	d := covid()
	if d.Size() != 128 {
		t.Fatalf("Size = %d, want 128", d.Size())
	}
	if d.NumAttrs() != 4 {
		t.Fatalf("NumAttrs = %d, want 4", d.NumAttrs())
	}
	wantStrides := []int{64, 16, 8, 1}
	for i, w := range wantStrides {
		if d.Stride(i) != w {
			t.Errorf("Stride(%d) = %d, want %d", i, d.Stride(i), w)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	d := covid()
	seen := make(map[int]bool)
	for p := 0; p < 2; p++ {
		for a := 0; a < 4; a++ {
			for g := 0; g < 2; g++ {
				for e := 0; e < 8; e++ {
					idx := d.Encode([]int{p, a, g, e})
					if idx < 0 || idx >= d.Size() {
						t.Fatalf("Encode(%d,%d,%d,%d) = %d out of range", p, a, g, e, idx)
					}
					if seen[idx] {
						t.Fatalf("Encode collision at %d", idx)
					}
					seen[idx] = true
					got := d.Decode(idx, nil)
					want := []int{p, a, g, e}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("Decode(%d) = %v, want %v", idx, got, want)
						}
					}
				}
			}
		}
	}
	if len(seen) != d.Size() {
		t.Fatalf("encoded %d distinct indices, want %d", len(seen), d.Size())
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	d := MustNew(
		Attribute{Name: "a", Card: 5},
		Attribute{Name: "b", Card: 7},
		Attribute{Name: "c", Card: 3},
	)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tuple := []int{r.Intn(5), r.Intn(7), r.Intn(3)}
		idx := d.Encode(tuple)
		back := d.Decode(idx, nil)
		for i := range tuple {
			if back[i] != tuple[i] {
				return false
			}
		}
		// Value must agree with Decode without materializing the tuple.
		for i := range tuple {
			if d.Value(idx, i) != tuple[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeReusesDst(t *testing.T) {
	d := covid()
	dst := make([]int, 4)
	got := d.Decode(5, dst)
	if &got[0] != &dst[0] {
		t.Error("Decode allocated despite sufficient dst")
	}
}

func TestEncodePanics(t *testing.T) {
	d := covid()
	for _, tuple := range [][]int{
		{0, 0, 0},       // short
		{0, 0, 0, 0, 0}, // long
		{2, 0, 0, 0},    // out of range
		{0, -1, 0, 0},   // negative
		{0, 0, 0, 8},    // out of range last
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Encode(%v) did not panic", tuple)
				}
			}()
			d.Encode(tuple)
		}()
	}
}

func TestDecodePanicsOutOfRange(t *testing.T) {
	d := covid()
	for _, idx := range []int{-1, 128, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Decode(%d) did not panic", idx)
				}
			}()
			d.Decode(idx, nil)
		}()
	}
}

func TestAttrIndexAndLevels(t *testing.T) {
	d := covid()
	if i := d.AttrIndex("age"); i != 1 {
		t.Errorf("AttrIndex(age) = %d, want 1", i)
	}
	if i := d.AttrIndex("missing"); i != -1 {
		t.Errorf("AttrIndex(missing) = %d, want -1", i)
	}
	if got := d.LevelName(0, 1); got != "positive" {
		t.Errorf("LevelName(0,1) = %q, want positive", got)
	}
	if got := d.LevelName(1, 2); got != "2" {
		t.Errorf("LevelName(1,2) = %q, want 2 (no levels registered)", got)
	}
	if v := d.LevelValue(0, "POSITIVE"); v != 1 {
		t.Errorf("LevelValue case-insensitive = %d, want 1", v)
	}
	if v := d.LevelValue(1, "3"); v != 3 {
		t.Errorf("LevelValue numeric fallback = %d, want 3", v)
	}
	if v := d.LevelValue(1, "9"); v != -1 {
		t.Errorf("LevelValue out-of-range numeric = %d, want -1", v)
	}
	if v := d.LevelValue(0, "maybe"); v != -1 {
		t.Errorf("LevelValue unknown = %d, want -1", v)
	}
}

func TestString(t *testing.T) {
	s := covid().String()
	if !strings.Contains(s, "N=128") || !strings.Contains(s, "positive(2)") {
		t.Errorf("String() = %q, want domain description", s)
	}
}

func TestEqual(t *testing.T) {
	a, b := covid(), covid()
	if !a.Equal(b) {
		t.Error("identical domains not Equal")
	}
	if !a.Equal(a) {
		t.Error("domain not Equal to itself")
	}
	if a.Equal(nil) {
		t.Error("domain Equal(nil)")
	}
	c := MustNew(Attribute{Name: "positive", Card: 2})
	if a.Equal(c) {
		t.Error("different-shape domains Equal")
	}
	d := MustNew(
		Attribute{Name: "positive", Card: 2},
		Attribute{Name: "age", Card: 5}, // different card
		Attribute{Name: "gender", Card: 2},
		Attribute{Name: "ethnicity", Card: 8},
	)
	if a.Equal(d) {
		t.Error("different-cardinality domains Equal")
	}
}
