// Package domain models the data domain X of a differentially-private
// database as a finite product of categorical attributes.
//
// Following §4.1 of the Turbo paper, a database x with n rows over domain X
// can be represented as a histogram h ∈ N^X where h(v) counts the rows equal
// to v. This package provides the indexing scheme that maps attribute value
// tuples to dense bin indices in [0, N) with N = |X|, so that histograms can
// be stored as flat vectors and linear queries can be evaluated by iterating
// bins.
//
// Attribute values are small non-negative integers; callers that have named
// categories (e.g. age brackets) register them as Attribute levels and use
// Level lookups for presentation.
package domain

import (
	"errors"
	"fmt"
	"strings"
)

// Attribute is one categorical column of the domain, with a name and a fixed
// cardinality. Level names are optional; when present they must cover the
// whole cardinality and are used only for parsing and display.
type Attribute struct {
	Name   string
	Card   int      // number of distinct values, ≥ 1
	Levels []string // optional human-readable names, len == Card when set
}

// Domain is an ordered product of attributes. The zero value is unusable;
// construct with New.
type Domain struct {
	attrs   []Attribute
	strides []int // strides[i] = product of Card of attrs[i+1:]
	size    int   // N = |X|
	index   map[string]int
}

// ErrBadAttribute reports an invalid attribute specification.
var ErrBadAttribute = errors.New("domain: bad attribute")

// New builds a domain from the given attributes. Attribute names must be
// unique and non-empty, and every cardinality must be at least 1. The total
// domain size must fit in an int.
func New(attrs ...Attribute) (*Domain, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("%w: no attributes", ErrBadAttribute)
	}
	d := &Domain{
		attrs:   make([]Attribute, len(attrs)),
		strides: make([]int, len(attrs)),
		size:    1,
		index:   make(map[string]int, len(attrs)),
	}
	copy(d.attrs, attrs)
	for i, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("%w: attribute %d has empty name", ErrBadAttribute, i)
		}
		if a.Card < 1 {
			return nil, fmt.Errorf("%w: attribute %q has cardinality %d", ErrBadAttribute, a.Name, a.Card)
		}
		if a.Levels != nil && len(a.Levels) != a.Card {
			return nil, fmt.Errorf("%w: attribute %q has %d levels for cardinality %d",
				ErrBadAttribute, a.Name, len(a.Levels), a.Card)
		}
		if _, dup := d.index[a.Name]; dup {
			return nil, fmt.Errorf("%w: duplicate attribute %q", ErrBadAttribute, a.Name)
		}
		d.index[a.Name] = i
		if d.size > (1<<62)/a.Card {
			return nil, fmt.Errorf("%w: domain size overflow", ErrBadAttribute)
		}
		d.size *= a.Card
	}
	stride := 1
	for i := len(attrs) - 1; i >= 0; i-- {
		d.strides[i] = stride
		stride *= attrs[i].Card
	}
	return d, nil
}

// MustNew is New for statically-known domains; it panics on error.
func MustNew(attrs ...Attribute) *Domain {
	d, err := New(attrs...)
	if err != nil {
		panic(err)
	}
	return d
}

// Size returns N = |X|, the number of points in the domain.
func (d *Domain) Size() int { return d.size }

// NumAttrs returns the number of attributes d was built from.
func (d *Domain) NumAttrs() int { return len(d.attrs) }

// Attr returns the i-th attribute.
func (d *Domain) Attr(i int) Attribute { return d.attrs[i] }

// AttrIndex returns the position of the named attribute, or -1.
func (d *Domain) AttrIndex(name string) int {
	if i, ok := d.index[name]; ok {
		return i
	}
	return -1
}

// Card returns the cardinality of attribute i.
func (d *Domain) Card(i int) int { return d.attrs[i].Card }

// Stride returns the bin-index stride of attribute i: changing attribute i
// by one moves the encoded index by Stride(i).
func (d *Domain) Stride(i int) int { return d.strides[i] }

// Encode maps an attribute-value tuple to its dense bin index. It panics if
// the tuple length or any value is out of range, since callers construct
// tuples from already-validated queries and data.
func (d *Domain) Encode(tuple []int) int {
	if len(tuple) != len(d.attrs) {
		panic(fmt.Sprintf("domain: Encode got %d values for %d attributes", len(tuple), len(d.attrs)))
	}
	idx := 0
	for i, v := range tuple {
		if v < 0 || v >= d.attrs[i].Card {
			panic(fmt.Sprintf("domain: value %d out of range for attribute %q (card %d)",
				v, d.attrs[i].Name, d.attrs[i].Card))
		}
		idx += v * d.strides[i]
	}
	return idx
}

// Decode writes the attribute-value tuple of bin index idx into dst and
// returns it. If dst is nil or too short a new slice is allocated.
func (d *Domain) Decode(idx int, dst []int) []int {
	if idx < 0 || idx >= d.size {
		panic(fmt.Sprintf("domain: bin index %d out of range [0,%d)", idx, d.size))
	}
	if cap(dst) < len(d.attrs) {
		dst = make([]int, len(d.attrs))
	}
	dst = dst[:len(d.attrs)]
	for i := range d.attrs {
		dst[i] = idx / d.strides[i]
		idx %= d.strides[i]
	}
	return dst
}

// Value returns the value of attribute attr at bin index idx without
// materializing the full tuple.
func (d *Domain) Value(idx, attr int) int {
	return (idx / d.strides[attr]) % d.attrs[attr].Card
}

// LevelName returns the display name for value v of attribute i, falling
// back to the decimal value when no levels are registered.
func (d *Domain) LevelName(i, v int) string {
	a := d.attrs[i]
	if a.Levels != nil && v >= 0 && v < len(a.Levels) {
		return a.Levels[v]
	}
	return fmt.Sprintf("%d", v)
}

// LevelValue resolves a level name (or decimal string) for attribute i to
// its value, returning -1 when unknown.
func (d *Domain) LevelValue(i int, name string) int {
	a := d.attrs[i]
	for v, lv := range a.Levels {
		if strings.EqualFold(lv, name) {
			return v
		}
	}
	var v int
	if _, err := fmt.Sscanf(name, "%d", &v); err == nil && v >= 0 && v < a.Card {
		return v
	}
	return -1
}

// String describes the domain, e.g. "positive(2)×age(4)×gender(2)×ethnicity(8) N=128".
func (d *Domain) String() string {
	var b strings.Builder
	for i, a := range d.attrs {
		if i > 0 {
			b.WriteByte('x')
		}
		fmt.Fprintf(&b, "%s(%d)", a.Name, a.Card)
	}
	fmt.Fprintf(&b, " N=%d", d.size)
	return b.String()
}

// Equal reports whether two domains have identical attribute names and
// cardinalities (levels are ignored: they are presentation only).
func (d *Domain) Equal(o *Domain) bool {
	if d == o {
		return true
	}
	if o == nil || len(d.attrs) != len(o.attrs) {
		return false
	}
	for i := range d.attrs {
		if d.attrs[i].Name != o.attrs[i].Name || d.attrs[i].Card != o.attrs[i].Card {
			return false
		}
	}
	return true
}
