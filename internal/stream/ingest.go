// Package stream is Turbo's streaming ingestion subsystem (§4.5, use case
// 3): the write-side counterpart of the core query pipeline. Partitions
// arriving over time are submitted in batches, coalesced into ordered
// ingestion epochs, and applied to the session in the order that keeps
// every concurrent query accountable:
//
//  1. accountants — the scalar block (and, in Gaussian mode, the Rényi
//     block) grow first, so a query can never name a partition whose
//     budget does not exist (Session.AppendPartitions).
//  2. dataset — the new partitions appear, initially empty.
//  3. data — each arrival's per-bin counts are bulk-loaded.
//  4. warm-start — under Mode Streaming, the new tree leaves are
//     materialized eagerly, copying the previous leaf's trained histogram
//     and heuristic state (§4.5) at ingestion time instead of on the first
//     query, which keeps first-query latency flat under load.
//
// One worker goroutine applies epochs; any number of producers may Submit
// concurrently. Submissions made while an epoch is being applied coalesce
// into the next epoch, so a burst of B batches costs O(1) epochs rather
// than B lock round-trips per layer — the batched AppendPartition the
// streaming evaluation drives (turbo-bench -exp=streaming).
//
// Two operational concerns ride on the same queue:
//
//   - Backpressure: WithMaxPending bounds the submission queue; an
//     overflowing Submit fails fast with ErrBacklogFull instead of letting
//     an ingest storm grow the backlog (and every waiting producer's
//     latency) without bound. The HTTP layer maps it to 503 + Retry-After.
//   - Durability: the ingestor is a persist.Snapshotter. Quiesce pauses
//     the worker at an epoch boundary; a snapshot then serializes the
//     pending (submitted but unapplied) batches, and restoring re-enqueues
//     them on the fresh session — the applied state was captured by the
//     other sections, so every partition lands exactly once.
package stream

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/persist"
)

// ErrBacklogFull reports a Submit refused because the bounded submission
// queue is at capacity. The caller should shed or retry after a beat (the
// server translates this into 503 + Retry-After).
var ErrBacklogFull = errors.New("stream: ingestion backlog full")

// SectionPending tags the pending-epoch queue in session snapshots.
const SectionPending = "stream/pending"

// Arrival is one new partition's payload: dense per-bin row counts over
// the session's domain. A nil Counts registers an empty partition (rows
// can be loaded later through the dataset, e.g. row-by-row ingestion).
type Arrival struct {
	Counts []int
}

// Ticket tracks one submitted batch through its ingestion epoch.
type Ticket struct {
	done  chan struct{}
	first int
	count int
	parts int
	err   error
}

// Wait blocks until the batch's epoch has been applied and returns the
// inclusive partition index range assigned to the batch's arrivals.
func (t *Ticket) Wait() (first, last int, err error) {
	<-t.done
	if t.err != nil {
		return 0, 0, t.err
	}
	return t.first, t.first + t.count - 1, nil
}

// Partitions returns the store's partition count as of the batch's epoch
// (captured atomically with the index assignment, so it is consistent
// with Wait's range even while later epochs land). Valid after Wait.
func (t *Ticket) Partitions() int {
	<-t.done
	return t.parts
}

// Stats are the ingestion counters the server exposes in /schema.
type Stats struct {
	// Batches counts Submit calls; Epochs counts the coalesced
	// AppendPartitions rounds that applied them (Epochs ≤ Batches).
	Batches, Epochs int64
	// Partitions and Rows count ingested partitions and rows.
	Partitions, Rows int64
	// WarmStarted counts tree leaves materialized eagerly at ingestion.
	WarmStarted int64
	// Pending is the instantaneous number of batches not yet fully
	// applied: queued plus those inside the in-flight epoch.
	Pending int64
	// Shed counts Submits refused by the bounded queue (ErrBacklogFull).
	Shed int64
}

// Option configures an Ingestor at construction.
type Option func(*Ingestor)

// WithMaxPending bounds the submission queue to at most n batches awaiting
// or inside an epoch; further Submits fail with ErrBacklogFull until the
// worker drains. n <= 0 keeps the queue unbounded (the default).
func WithMaxPending(n int) Option {
	return func(in *Ingestor) { in.maxPending = n }
}

// Ingestor turns asynchronous batched partition arrivals into ordered
// ingestion epochs over one streaming (or partitioned) session. Safe for
// concurrent use by any number of producers.
type Ingestor struct {
	sess       *core.Session
	maxPending int

	mu      sync.Mutex
	pending []pendingBatch
	// applying is the number of batches swapped out of pending whose
	// epoch is still being applied; Flush waits on both.
	applying int
	// paused counts active Quiesce holds; the worker starts no epoch
	// while it is positive.
	paused int
	closed bool
	// work wakes the worker (new batch, resume, close); drained is
	// signaled whenever the in-flight epoch lands or the queue empties.
	work    *sync.Cond
	drained *sync.Cond

	wg sync.WaitGroup

	batches, epochs, parts, rows, warmed, shed atomic.Int64
}

// pendingBatch is one Submit awaiting its epoch.
type pendingBatch struct {
	arrivals []Arrival
	ticket   *Ticket
}

// NewIngestor creates an ingestor over sess, starts its epoch worker, and
// registers the pending queue as the session's "stream/pending" snapshot
// section. The session must be partitioned or streaming: non-partitioned
// sessions cannot grow (core.Session.AppendPartitions refuses them).
// Close releases the worker.
func NewIngestor(sess *core.Session, opts ...Option) (*Ingestor, error) {
	if sess == nil {
		return nil, errors.New("stream: nil session")
	}
	if sess.Tree() == nil {
		return nil, errors.New("stream: ingestion needs a partitioned or streaming session")
	}
	in := &Ingestor{sess: sess}
	in.work = sync.NewCond(&in.mu)
	in.drained = sync.NewCond(&in.mu)
	for _, opt := range opts {
		opt(in)
	}
	sess.RegisterSnapshotter(in)
	in.wg.Add(1)
	go in.worker()
	return in, nil
}

// validate checks a batch's payloads against the session's domain before
// any index is assigned, so a malformed batch fails fast without
// consuming partitions.
func (in *Ingestor) validate(arrivals []Arrival) error {
	if len(arrivals) == 0 {
		return errors.New("stream: empty batch")
	}
	domSize := in.sess.Dataset().Domain().Size()
	for i, a := range arrivals {
		if a.Counts == nil {
			continue
		}
		if len(a.Counts) != domSize {
			return fmt.Errorf("stream: arrival %d has %d bins, domain has %d", i, len(a.Counts), domSize)
		}
		for bin, c := range a.Counts {
			if c < 0 {
				return fmt.Errorf("stream: arrival %d has negative count %d at bin %d", i, c, bin)
			}
		}
	}
	return nil
}

// Submit enqueues one batch of arrivals for the next ingestion epoch and
// returns immediately with a ticket; partition indices are assigned in
// submission order when the epoch is applied. With a bounded queue
// (WithMaxPending), a Submit that would exceed the bound fails with
// ErrBacklogFull and consumes nothing.
func (in *Ingestor) Submit(arrivals ...Arrival) (*Ticket, error) {
	if err := in.validate(arrivals); err != nil {
		return nil, err
	}
	tickets, err := in.enqueue([][]Arrival{arrivals}, true)
	if err != nil {
		return nil, err
	}
	return tickets[0], nil
}

// enqueue appends validated batches to the pending queue and wakes the
// worker, returning one ticket per batch. It is the single enqueue
// protocol shared by Submit and the snapshot restore path; bounded is
// false only for restored batches, which were admitted once already.
func (in *Ingestor) enqueue(batches [][]Arrival, bounded bool) ([]*Ticket, error) {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return nil, errors.New("stream: ingestor closed")
	}
	if depth := len(in.pending) + in.applying; bounded && in.maxPending > 0 && depth >= in.maxPending {
		in.mu.Unlock()
		in.shed.Add(1)
		return nil, fmt.Errorf("%w: %d batches queued (bound %d)", ErrBacklogFull, depth, in.maxPending)
	}
	tickets := make([]*Ticket, len(batches))
	for i, arrivals := range batches {
		tickets[i] = &Ticket{done: make(chan struct{}), count: len(arrivals)}
		in.pending = append(in.pending, pendingBatch{arrivals: arrivals, ticket: tickets[i]})
	}
	in.mu.Unlock()
	in.batches.Add(int64(len(batches)))
	in.work.Broadcast()
	return tickets, nil
}

// Append is the synchronous convenience: Submit plus Wait.
func (in *Ingestor) Append(arrivals ...Arrival) (first, last int, err error) {
	t, err := in.Submit(arrivals...)
	if err != nil {
		return 0, 0, err
	}
	return t.Wait()
}

// Flush blocks until every batch submitted before the call has been
// applied. It must not be called while the ingestor is quiesced (a
// quiesced worker applies nothing, so a non-empty queue would never
// drain).
func (in *Ingestor) Flush() {
	in.mu.Lock()
	for len(in.pending) > 0 || in.applying > 0 {
		in.drained.Wait()
	}
	in.mu.Unlock()
}

// Quiesce pauses the worker at an epoch boundary: it blocks until no
// epoch is mid-application, then keeps the worker from starting another
// until the returned resume function runs. Quiesce holds nest (each
// resume releases one); SaveState takes one automatically around a
// snapshot. Submissions stay accepted while quiesced — they accumulate
// as pending batches (and, with WithMaxPending, eventually shed).
func (in *Ingestor) Quiesce() (resume func()) {
	in.mu.Lock()
	in.paused++
	for in.applying > 0 {
		in.drained.Wait()
	}
	in.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			in.mu.Lock()
			in.paused--
			in.mu.Unlock()
			in.work.Broadcast()
		})
	}
}

// Close drains the queue, stops the worker, and fails any batch submitted
// after the close began. Idempotent. Close respects an active Quiesce:
// the final drain waits until every hold resumes, so a snapshot racing a
// forced shutdown can never capture batches as pending while the drain
// also applies them (which a restore would then double-apply). Callers
// must therefore resume their holds; SaveState always does.
func (in *Ingestor) Close() {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return
	}
	in.closed = true
	in.mu.Unlock()
	in.work.Broadcast()
	in.wg.Wait()
}

// Stats returns a snapshot of the ingestion counters.
func (in *Ingestor) Stats() Stats {
	in.mu.Lock()
	pending := int64(len(in.pending) + in.applying)
	in.mu.Unlock()
	return Stats{
		Batches:     in.batches.Load(),
		Epochs:      in.epochs.Load(),
		Partitions:  in.parts.Load(),
		Rows:        in.rows.Load(),
		WarmStarted: in.warmed.Load(),
		Pending:     pending,
		Shed:        in.shed.Load(),
	}
}

// pendingState is the "stream/pending" section payload: the arrivals of
// every submitted-but-unapplied batch, in submission order, batch
// boundaries preserved.
type pendingState struct {
	Batches [][]Arrival
}

// SnapshotSection implements persist.Snapshotter.
func (in *Ingestor) SnapshotSection() string { return SectionPending }

// SnapshotOptional marks the section as legitimately absent: sessions
// without an ingestor never write it, and an idle ingestor omits it so
// its snapshots restore anywhere.
func (in *Ingestor) SnapshotOptional() bool { return true }

// SnapshotPayload serializes the pending queue. The registry quiesces the
// ingestor first (Quiescer), so no batch can be mid-application: every
// batch is either fully applied (captured by the dataset/accountant/tree
// sections) or fully pending (captured here) — never both.
func (in *Ingestor) SnapshotPayload() ([]byte, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.applying > 0 {
		return nil, errors.New("stream: snapshot while an epoch is mid-application (quiesce first)")
	}
	if len(in.pending) == 0 {
		return nil, nil // omit the section entirely
	}
	st := pendingState{Batches: make([][]Arrival, len(in.pending))}
	for i, b := range in.pending {
		st.Batches[i] = b.arrivals
	}
	return persist.Encode(st)
}

// RestorePayload re-enqueues a snapshot's pending batches on this
// ingestor's fresh session and blocks until their epochs are applied,
// so a LoadState that returns nil really has every restored partition
// queryable — and an epoch failure surfaces as the restore's error
// instead of vanishing with an unobserved ticket. The batches bypass
// the backlog bound (they were admitted once already). No partition can
// double-apply: the snapshot's applied sections never include these
// batches (see SnapshotPayload). The ingestor must not be quiesced
// during a restore (a paused worker would never apply the batches).
func (in *Ingestor) RestorePayload(payload []byte) error {
	var st pendingState
	if err := persist.Decode(payload, &st); err != nil {
		return err
	}
	for i, arrivals := range st.Batches {
		if err := in.validate(arrivals); err != nil {
			return fmt.Errorf("stream: restored batch %d: %w", i, err)
		}
	}
	tickets, err := in.enqueue(st.Batches, false)
	if err != nil {
		return err
	}
	for i, t := range tickets {
		if _, _, err := t.Wait(); err != nil {
			return fmt.Errorf("stream: apply restored batch %d: %w", i, err)
		}
	}
	return nil
}

// worker applies ingestion epochs until Close. Each round swaps out the
// whole pending queue and applies it as one epoch; it idles while there
// is nothing to do or a Quiesce hold is active (the hold pauses even
// the final close-time drain — see Close).
func (in *Ingestor) worker() {
	defer in.wg.Done()
	in.mu.Lock()
	for {
		for in.paused > 0 || (!in.closed && len(in.pending) == 0) {
			if len(in.pending) == 0 {
				in.drained.Broadcast()
			}
			in.work.Wait()
		}
		if len(in.pending) == 0 { // closed with nothing left
			in.drained.Broadcast()
			in.mu.Unlock()
			return
		}
		batch := in.pending
		in.pending = nil
		in.applying = len(batch)
		in.mu.Unlock()
		in.applyEpoch(batch)
		in.mu.Lock()
		in.applying = 0
		in.drained.Broadcast()
	}
}

// applyEpoch ingests the coalesced batches in the accountants-first order
// the package comment documents.
func (in *Ingestor) applyEpoch(batch []pendingBatch) {
	k := 0
	for _, b := range batch {
		k += len(b.arrivals)
	}
	first, err := in.sess.AppendPartitions(k)
	if err != nil {
		for _, b := range batch {
			b.ticket.err = err
			close(b.ticket.done)
		}
		return
	}
	in.epochs.Add(1)
	in.parts.Add(int64(k))

	ds := in.sess.Dataset()
	next := first
	for _, b := range batch {
		b.ticket.first = next
		b.ticket.parts = first + k
		for _, a := range b.arrivals {
			if a.Counts != nil {
				if err := ds.BulkLoad(next, a.Counts); err != nil {
					// Counts were validated at Submit; a failure here means
					// the partition index is wrong, which the epoch
					// serialization makes impossible. Surface it anyway.
					b.ticket.err = err
				} else {
					for _, c := range a.Counts {
						in.rows.Add(int64(c))
					}
				}
			}
			next++
		}
	}
	// Eagerly warm-start the epoch's tree leaves, left to right so each
	// new leaf can copy from its (possibly epoch-mate) predecessor. Under
	// Mode Partitioned (no warm-start) this is a no-op and leaves stay
	// lazy.
	if t := in.sess.Tree(); t != nil && in.sess.Mode() == core.Streaming {
		for p := first; p < first+k; p++ {
			if t.EagerWarmStart(p) {
				in.warmed.Add(1)
			}
		}
	}
	for _, b := range batch {
		close(b.ticket.done)
	}
}
