// Package stream is Turbo's streaming ingestion subsystem (§4.5, use case
// 3): the write-side counterpart of the core query pipeline. Partitions
// arriving over time are submitted in batches, coalesced into ordered
// ingestion epochs, and applied to the session in the order that keeps
// every concurrent query accountable:
//
//  1. accountants — the scalar block (and, in Gaussian mode, the Rényi
//     block) grow first, so a query can never name a partition whose
//     budget does not exist (Session.AppendPartitions).
//  2. dataset — the new partitions appear, initially empty.
//  3. data — each arrival's per-bin counts are bulk-loaded.
//  4. warm-start — under Mode Streaming, the new tree leaves are
//     materialized eagerly, copying the previous leaf's trained histogram
//     and heuristic state (§4.5) at ingestion time instead of on the first
//     query, which keeps first-query latency flat under load.
//
// One worker goroutine applies epochs; any number of producers may Submit
// concurrently. Submissions made while an epoch is being applied coalesce
// into the next epoch, so a burst of B batches costs O(1) epochs rather
// than B lock round-trips per layer — the batched AppendPartition the
// streaming evaluation drives (turbo-bench -exp=streaming).
package stream

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Arrival is one new partition's payload: dense per-bin row counts over
// the session's domain. A nil Counts registers an empty partition (rows
// can be loaded later through the dataset, e.g. row-by-row ingestion).
type Arrival struct {
	Counts []int
}

// Ticket tracks one submitted batch through its ingestion epoch.
type Ticket struct {
	done  chan struct{}
	first int
	count int
	parts int
	err   error
}

// Wait blocks until the batch's epoch has been applied and returns the
// inclusive partition index range assigned to the batch's arrivals.
func (t *Ticket) Wait() (first, last int, err error) {
	<-t.done
	if t.err != nil {
		return 0, 0, t.err
	}
	return t.first, t.first + t.count - 1, nil
}

// Partitions returns the store's partition count as of the batch's epoch
// (captured atomically with the index assignment, so it is consistent
// with Wait's range even while later epochs land). Valid after Wait.
func (t *Ticket) Partitions() int {
	<-t.done
	return t.parts
}

// Stats are the ingestion counters the server exposes in /schema.
type Stats struct {
	// Batches counts Submit calls; Epochs counts the coalesced
	// AppendPartitions rounds that applied them (Epochs ≤ Batches).
	Batches, Epochs int64
	// Partitions and Rows count ingested partitions and rows.
	Partitions, Rows int64
	// WarmStarted counts tree leaves materialized eagerly at ingestion.
	WarmStarted int64
	// Pending is the instantaneous number of batches not yet fully
	// applied: queued plus those inside the in-flight epoch.
	Pending int64
}

// Ingestor turns asynchronous batched partition arrivals into ordered
// ingestion epochs over one streaming (or partitioned) session. Safe for
// concurrent use by any number of producers.
type Ingestor struct {
	sess *core.Session

	mu      sync.Mutex
	pending []pendingBatch
	// applying is the number of batches swapped out of pending whose
	// epoch is still being applied; Flush waits on both.
	applying int
	closed   bool
	wake     chan struct{}
	drained  *sync.Cond // signaled when the queue and in-flight epoch empty

	wg sync.WaitGroup

	batches, epochs, parts, rows, warmed atomic.Int64
}

// pendingBatch is one Submit awaiting its epoch.
type pendingBatch struct {
	arrivals []Arrival
	ticket   *Ticket
}

// NewIngestor creates an ingestor over sess and starts its epoch worker.
// The session must be partitioned or streaming: non-partitioned sessions
// cannot grow (core.Session.AppendPartitions refuses them). Close releases
// the worker.
func NewIngestor(sess *core.Session) (*Ingestor, error) {
	if sess == nil {
		return nil, errors.New("stream: nil session")
	}
	if sess.Tree() == nil {
		return nil, errors.New("stream: ingestion needs a partitioned or streaming session")
	}
	in := &Ingestor{
		sess: sess,
		wake: make(chan struct{}, 1),
	}
	in.drained = sync.NewCond(&in.mu)
	in.wg.Add(1)
	go in.worker()
	return in, nil
}

// Submit enqueues one batch of arrivals for the next ingestion epoch and
// returns immediately with a ticket; partition indices are assigned in
// submission order when the epoch is applied. Payloads are validated here,
// before any index is assigned, so a malformed batch fails fast without
// consuming partitions.
func (in *Ingestor) Submit(arrivals ...Arrival) (*Ticket, error) {
	if len(arrivals) == 0 {
		return nil, errors.New("stream: empty batch")
	}
	domSize := in.sess.Dataset().Domain().Size()
	for i, a := range arrivals {
		if a.Counts == nil {
			continue
		}
		if len(a.Counts) != domSize {
			return nil, fmt.Errorf("stream: arrival %d has %d bins, domain has %d", i, len(a.Counts), domSize)
		}
		for bin, c := range a.Counts {
			if c < 0 {
				return nil, fmt.Errorf("stream: arrival %d has negative count %d at bin %d", i, c, bin)
			}
		}
	}
	t := &Ticket{done: make(chan struct{}), count: len(arrivals)}
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return nil, errors.New("stream: ingestor closed")
	}
	in.pending = append(in.pending, pendingBatch{arrivals: arrivals, ticket: t})
	in.mu.Unlock()
	in.batches.Add(1)
	select {
	case in.wake <- struct{}{}:
	default: // worker already has a wake-up pending
	}
	return t, nil
}

// Append is the synchronous convenience: Submit plus Wait.
func (in *Ingestor) Append(arrivals ...Arrival) (first, last int, err error) {
	t, err := in.Submit(arrivals...)
	if err != nil {
		return 0, 0, err
	}
	return t.Wait()
}

// Flush blocks until every batch submitted before the call has been
// applied.
func (in *Ingestor) Flush() {
	in.mu.Lock()
	for len(in.pending) > 0 || in.applying > 0 {
		in.drained.Wait()
	}
	in.mu.Unlock()
}

// Close drains the queue, stops the worker, and fails any batch submitted
// after the close began. Idempotent.
func (in *Ingestor) Close() {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return
	}
	in.closed = true
	in.mu.Unlock()
	select {
	case in.wake <- struct{}{}:
	default:
	}
	in.wg.Wait()
}

// Stats returns a snapshot of the ingestion counters.
func (in *Ingestor) Stats() Stats {
	in.mu.Lock()
	pending := int64(len(in.pending) + in.applying)
	in.mu.Unlock()
	return Stats{
		Batches:     in.batches.Load(),
		Epochs:      in.epochs.Load(),
		Partitions:  in.parts.Load(),
		Rows:        in.rows.Load(),
		WarmStarted: in.warmed.Load(),
		Pending:     pending,
	}
}

// worker applies ingestion epochs until Close. Each round swaps out the
// whole pending queue and applies it as one epoch.
func (in *Ingestor) worker() {
	defer in.wg.Done()
	for {
		in.mu.Lock()
		batch := in.pending
		in.pending = nil
		in.applying = len(batch)
		closed := in.closed
		in.mu.Unlock()
		if len(batch) > 0 {
			in.applyEpoch(batch)
			in.mu.Lock()
			in.applying = 0
			if len(in.pending) == 0 {
				in.drained.Broadcast()
			}
			in.mu.Unlock()
			continue // re-check for submissions that arrived mid-epoch
		}
		if closed {
			in.mu.Lock()
			in.drained.Broadcast()
			in.mu.Unlock()
			return
		}
		<-in.wake
	}
}

// applyEpoch ingests the coalesced batches in the accountants-first order
// the package comment documents.
func (in *Ingestor) applyEpoch(batch []pendingBatch) {
	k := 0
	for _, b := range batch {
		k += len(b.arrivals)
	}
	first, err := in.sess.AppendPartitions(k)
	if err != nil {
		for _, b := range batch {
			b.ticket.err = err
			close(b.ticket.done)
		}
		return
	}
	in.epochs.Add(1)
	in.parts.Add(int64(k))

	ds := in.sess.Dataset()
	next := first
	for _, b := range batch {
		b.ticket.first = next
		b.ticket.parts = first + k
		for _, a := range b.arrivals {
			if a.Counts != nil {
				if err := ds.BulkLoad(next, a.Counts); err != nil {
					// Counts were validated at Submit; a failure here means
					// the partition index is wrong, which the epoch
					// serialization makes impossible. Surface it anyway.
					b.ticket.err = err
				} else {
					for _, c := range a.Counts {
						in.rows.Add(int64(c))
					}
				}
			}
			next++
		}
	}
	// Eagerly warm-start the epoch's tree leaves, left to right so each
	// new leaf can copy from its (possibly epoch-mate) predecessor. Under
	// Mode Partitioned (no warm-start) this is a no-op and leaves stay
	// lazy.
	if t := in.sess.Tree(); t != nil && in.sess.Mode() == core.Streaming {
		for p := first; p < first+k; p++ {
			if t.EagerWarmStart(p) {
				in.warmed.Add(1)
			}
		}
	}
	for _, b := range batch {
		close(b.ticket.done)
	}
}
