// Race/stress suite for the streaming ingestion pipeline: ingestion storms
// interleaved with tree-mode queries (run with -race), covering pure-ε and
// Gaussian sessions, asserting the budget books stay consistent across
// epochs.

package stream

import (
	"errors"
	"sort"
	"sync"
	"testing"

	"repro/internal/accountant"
	"repro/internal/core"
	"repro/internal/query"
)

// TestIngestionStorm floods a session with concurrent arrival batches while
// query workers hammer windows over whatever partitions currently exist.
// Invariants checked after the storm, for pure-ε and Gaussian accounting:
//
//   - every accountant covers every dataset partition (never lagged);
//   - per-partition spend stays within ε_G (Gaussian: converted spend, and
//     the mirrored scalar book agrees with it);
//   - every ticket resolved to a unique, dense partition index;
//   - ingested partitions hold exactly the submitted rows.
func TestIngestionStorm(t *testing.T) {
	for _, gaussian := range []bool{false, true} {
		name := "pure"
		if gaussian {
			name = "gaussian"
		}
		t.Run(name, func(t *testing.T) {
			const initial = 2
			ds := testDS(t, initial)
			sess := streamingSession(t, ds, core.Streaming, gaussian)
			ing, err := NewIngestor(sess)
			if err != nil {
				t.Fatal(err)
			}
			defer ing.Close()

			pool := []*query.Query{
				query.MustNew(ds.Domain(), map[int][]int{0: {1}}),
				query.MustNew(ds.Domain(), map[int][]int{1: {0, 2}}),
				query.MustNew(ds.Domain(), map[int][]int{0: {2}, 1: {3}}),
			}

			var wg sync.WaitGroup
			var mu sync.Mutex
			var indices []int
			const producers, batchesPer = 4, 6
			rowsPerBin := 20
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for b := 0; b < batchesPer; b++ {
						size := 1 + (p+b)%2
						batch := make([]Arrival, size)
						for i := range batch {
							batch[i] = arrival(ds.Domain(), rowsPerBin)
						}
						first, last, err := ing.Append(batch...)
						if err != nil {
							t.Errorf("producer %d: %v", p, err)
							return
						}
						mu.Lock()
						for i := first; i <= last; i++ {
							indices = append(indices, i)
						}
						mu.Unlock()
					}
				}(p)
			}
			const workers = 6
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 50; i++ {
						// Windows over partitions that existed at loop
						// entry: valid even as the stream grows, and every
						// named partition's budget exists (accountants grow
						// before the dataset).
						parts := ds.Partitions()
						lo := (w + i) % parts
						q := pool[i%len(pool)].WithWindow(lo, parts-1)
						if _, err := sess.Answer(q); err != nil && !errors.Is(err, accountant.ErrBudgetExhausted) {
							t.Errorf("worker %d: %v", w, err)
							return
						}
						if sess.Accountant().Partitions() < ds.Partitions() {
							t.Error("scalar block lags the dataset")
							return
						}
					}
				}(w)
			}
			wg.Wait()
			ing.Flush()

			// Index assignment: a dense, unique range after the initial
			// partitions.
			sort.Ints(indices)
			for i, idx := range indices {
				if idx != initial+i {
					t.Fatalf("indices not dense at %d: got %d", i, idx)
				}
			}
			if ds.Partitions() != initial+len(indices) {
				t.Fatalf("dataset has %d partitions, want %d", ds.Partitions(), initial+len(indices))
			}
			for _, idx := range indices {
				if n := ds.PartitionN(idx); n != rowsPerBin*ds.Domain().Size() {
					t.Fatalf("partition %d holds %d rows", idx, n)
				}
			}

			// Budget books: consistent across every epoch the storm drove.
			acct := sess.Accountant()
			if acct.Partitions() != ds.Partitions() {
				t.Fatalf("block has %d partitions, dataset %d", acct.Partitions(), ds.Partitions())
			}
			for i := 0; i < acct.Partitions(); i++ {
				if s := acct.SpentAt(i); s > acct.Global()+1e-9 {
					t.Fatalf("partition %d overspent: %g", i, s)
				}
			}
			if a := sess.RDPAdmission(); a != nil {
				if a.Block().Partitions() != ds.Partitions() {
					t.Fatalf("RDP block has %d partitions, dataset %d", a.Block().Partitions(), ds.Partitions())
				}
				for i := 0; i < ds.Partitions(); i++ {
					conv := a.Block().SpentDPAt(i)
					if conv > acct.Global()+1e-9 {
						t.Fatalf("partition %d converted spend %g exceeds ε_G", i, conv)
					}
					if diff := conv - acct.SpentAt(i); diff > 1e-9 || diff < -1e-9 {
						t.Fatalf("partition %d books diverge: %g vs %g", i, conv, acct.SpentAt(i))
					}
				}
			}

			st := ing.Stats()
			if st.Partitions != int64(len(indices)) || st.Pending != 0 {
				t.Fatalf("stats: %+v, want %d partitions, 0 pending", st, len(indices))
			}
		})
	}
}

// TestStormWithDedup layers identical concurrent queries on top of an
// ingestion storm: the single-flight group must keep the pipeline safe
// when many goroutines race the same window/version while partitions
// arrive.
func TestStormWithDedup(t *testing.T) {
	ds := testDS(t, 4)
	sess := streamingSession(t, ds, core.Streaming, false)
	ing, err := NewIngestor(sess)
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()

	q := query.MustNew(ds.Domain(), map[int][]int{0: {1}})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for b := 0; b < 8; b++ {
			if _, _, err := ing.Append(arrival(ds.Domain(), 15)); err != nil {
				t.Errorf("append: %v", err)
				return
			}
		}
	}()
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				// Everyone chases the same fixed window so duplicates pile
				// onto the same flight key per data version.
				if _, err := sess.Answer(q.WithWindow(0, 3)); err != nil && !errors.Is(err, accountant.ErrBudgetExhausted) {
					t.Errorf("answer: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	acct := sess.Accountant()
	for i := 0; i < acct.Partitions(); i++ {
		if s := acct.SpentAt(i); s > acct.Global()+1e-9 {
			t.Fatalf("partition %d overspent: %g", i, s)
		}
	}
	if sess.Queries() == 0 {
		t.Fatal("no queries served")
	}
}
