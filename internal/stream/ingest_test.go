package stream

import (
	"math"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/domain"
	"repro/internal/interval"
	"repro/internal/noise"
	"repro/internal/query"
)

// testDomain is the shared small domain of the package's tests.
func testDomain() *domain.Domain {
	return domain.MustNew(
		domain.Attribute{Name: "a", Card: 4},
		domain.Attribute{Name: "b", Card: 4},
	)
}

// testDS builds a dataset with parts loaded partitions.
func testDS(t *testing.T, parts int) *dataset.Dataset {
	t.Helper()
	dom := testDomain()
	ds := dataset.New(dom, parts)
	rng := noise.NewRng(3)
	for p := 0; p < parts; p++ {
		for bin := 0; bin < dom.Size(); bin++ {
			if err := ds.AddCount(p, bin, 30+rng.IntN(40)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return ds
}

// streamingSession builds a streaming session over ds.
func streamingSession(t *testing.T, ds *dataset.Dataset, mode core.Mode, gaussian bool) *core.Session {
	t.Helper()
	cfg := core.Config{
		Mode:  mode,
		Alpha: 0.1, Beta: 0.01, EpsilonGlobal: 20,
		MCSamples: 200, Shards: 4, Seed: 7,
	}
	if gaussian {
		cfg.Gaussian = true
		cfg.DeltaGlobal = 1e-6
	}
	sess, err := core.NewSession(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

// arrival builds a payload with count rows per bin.
func arrival(dom *domain.Domain, count int) Arrival {
	counts := make([]int, dom.Size())
	for bin := range counts {
		counts[bin] = count
	}
	return Arrival{Counts: counts}
}

// TestIngestorAssignsDenseIndices submits batches from many goroutines and
// checks the epochs assign every arrival a unique, dense partition index,
// with data loaded and accountants grown before the ticket resolves.
func TestIngestorAssignsDenseIndices(t *testing.T) {
	ds := testDS(t, 2)
	sess := streamingSession(t, ds, core.Streaming, false)
	ing, err := NewIngestor(sess)
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()

	const producers, batchesPer = 6, 5
	var mu sync.Mutex
	var indices []int
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for b := 0; b < batchesPer; b++ {
				size := 1 + (p+b)%3
				batch := make([]Arrival, size)
				for i := range batch {
					batch[i] = arrival(ds.Domain(), 10)
				}
				first, last, err := ing.Append(batch...)
				if err != nil {
					t.Errorf("producer %d: %v", p, err)
					return
				}
				if last-first+1 != size {
					t.Errorf("producer %d: got range [%d,%d] for %d arrivals", p, first, last, size)
					return
				}
				// The epoch guarantees: accountants cover the new
				// partitions and the data is loaded when Wait returns.
				if sess.Accountant().Partitions() < last+1 {
					t.Error("accountant lags a resolved ticket")
					return
				}
				for i := first; i <= last; i++ {
					if ds.PartitionN(i) != 10*ds.Domain().Size() {
						t.Errorf("partition %d rows not loaded at ticket resolution", i)
						return
					}
				}
				mu.Lock()
				for i := first; i <= last; i++ {
					indices = append(indices, i)
				}
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()

	sort.Ints(indices)
	for i, idx := range indices {
		if idx != 2+i {
			t.Fatalf("indices not dense/unique at %d: %v...", i, indices[:i+1])
		}
	}
	st := ing.Stats()
	if st.Batches != producers*batchesPer {
		t.Fatalf("Batches = %d, want %d", st.Batches, producers*batchesPer)
	}
	if st.Epochs < 1 || st.Epochs > st.Batches {
		t.Fatalf("Epochs = %d out of [1,%d]", st.Epochs, st.Batches)
	}
	if int(st.Partitions) != len(indices) {
		t.Fatalf("Partitions = %d, want %d", st.Partitions, len(indices))
	}
	wantRows := int64(0)
	for range indices {
		wantRows += int64(10 * ds.Domain().Size())
	}
	if st.Rows != wantRows {
		t.Fatalf("Rows = %d, want %d", st.Rows, wantRows)
	}
	if st.Pending != 0 {
		t.Fatalf("Pending = %d after all waits", st.Pending)
	}
}

// TestIngestorEagerWarmStart checks a streaming ingest materializes the new
// leaf at ingestion time with the previous leaf's trained histogram, and
// that a plain partitioned session keeps leaves lazy.
func TestIngestorEagerWarmStart(t *testing.T) {
	ds := testDS(t, 1)
	sess := streamingSession(t, ds, core.Streaming, false)
	ing, err := NewIngestor(sess)
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()

	// Train leaf 0 so its histogram departs from uniform.
	q := query.MustNew(ds.Domain(), map[int][]int{0: {1}}).WithWindow(0, 0)
	for i := 0; i < 10; i++ {
		if _, err := sess.Answer(q); err != nil {
			t.Fatal(err)
		}
	}
	prev := sess.Tree().NodeHistogram(interval.Node{Start: 0, End: 0})
	if prev == nil {
		t.Fatal("leaf 0 never materialized")
	}

	first, _, err := ing.Append(arrival(ds.Domain(), 25))
	if err != nil {
		t.Fatal(err)
	}
	got := sess.Tree().NodeHistogram(interval.Node{Start: first, End: first})
	if got == nil {
		t.Fatal("streaming ingest did not materialize the new leaf eagerly")
	}
	for bin := 0; bin < prev.Size(); bin++ {
		if math.Abs(got.Weight(bin)-prev.Weight(bin)) > 1e-12 {
			t.Fatalf("leaf %d not warm-started from leaf 0 at bin %d: %g vs %g",
				first, bin, got.Weight(bin), prev.Weight(bin))
		}
	}
	if ing.Stats().WarmStarted != 1 {
		t.Fatalf("WarmStarted = %d, want 1", ing.Stats().WarmStarted)
	}

	// A partitioned (non-warm-start) session keeps leaves lazy.
	ds2 := testDS(t, 1)
	sess2 := streamingSession(t, ds2, core.Partitioned, false)
	ing2, err := NewIngestor(sess2)
	if err != nil {
		t.Fatal(err)
	}
	defer ing2.Close()
	first2, _, err := ing2.Append(arrival(ds2.Domain(), 25))
	if err != nil {
		t.Fatal(err)
	}
	if h := sess2.Tree().NodeHistogram(interval.Node{Start: first2, End: first2}); h != nil {
		t.Fatal("partitioned ingest materialized a leaf it should leave lazy")
	}
	if ing2.Stats().WarmStarted != 0 {
		t.Fatalf("partitioned WarmStarted = %d, want 0", ing2.Stats().WarmStarted)
	}
}

// TestIngestorValidation checks malformed submissions fail fast, before any
// partition index is consumed.
func TestIngestorValidation(t *testing.T) {
	ds := testDS(t, 1)
	sess := streamingSession(t, ds, core.Streaming, false)
	ing, err := NewIngestor(sess)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := ing.Submit(); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := ing.Submit(Arrival{Counts: []int{1, 2}}); err == nil {
		t.Fatal("wrong-width payload accepted")
	}
	bad := make([]int, ds.Domain().Size())
	bad[0] = -1
	if _, err := ing.Submit(Arrival{Counts: bad}); err == nil {
		t.Fatal("negative count accepted")
	}
	if ds.Partitions() != 1 {
		t.Fatalf("failed submissions consumed partitions: %d", ds.Partitions())
	}

	// Empty (nil-counts) arrivals register an empty partition.
	first, last, err := ing.Append(Arrival{})
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 || last != 1 || ds.PartitionN(1) != 0 {
		t.Fatalf("nil-counts arrival: [%d,%d], n=%d", first, last, ds.PartitionN(1))
	}

	ing.Close()
	if _, err := ing.Submit(arrival(ds.Domain(), 1)); err == nil {
		t.Fatal("submit after Close accepted")
	}
	ing.Close() // idempotent

	// Non-partitioned sessions cannot ingest.
	np, err := core.NewSession(core.Config{
		Mode: core.NonPartitioned, Alpha: 0.1, Beta: 0.01, EpsilonGlobal: 10, Seed: 3,
	}, testDS(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewIngestor(np); err == nil {
		t.Fatal("ingestor over a non-partitioned session accepted")
	}
}

// TestIngestorFlush checks Flush observes every prior Submit.
func TestIngestorFlush(t *testing.T) {
	ds := testDS(t, 1)
	sess := streamingSession(t, ds, core.Streaming, false)
	ing, err := NewIngestor(sess)
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()
	var tickets []*Ticket
	for i := 0; i < 20; i++ {
		tk, err := ing.Submit(arrival(ds.Domain(), 5))
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	ing.Flush()
	for _, tk := range tickets {
		select {
		case <-tk.done:
		default:
			t.Fatal("Flush returned with an unresolved ticket")
		}
	}
	if ds.Partitions() != 21 {
		t.Fatalf("partitions = %d, want 21", ds.Partitions())
	}
}
