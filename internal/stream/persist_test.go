package stream

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/query"
)

// TestQuiesceBarrier checks that a quiesced worker applies nothing, that
// submissions keep queueing, and that resume drains them.
func TestQuiesceBarrier(t *testing.T) {
	ds := testDS(t, 2)
	sess := streamingSession(t, ds, core.Streaming, false)
	ing, err := NewIngestor(sess)
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()
	dom := ds.Domain()

	resume := ing.Quiesce()
	tk, err := ing.Submit(arrival(dom, 5))
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if got := ds.Partitions(); got != 2 {
		t.Fatalf("quiesced ingestor applied an epoch: %d partitions", got)
	}
	if p := ing.Stats().Pending; p != 1 {
		t.Fatalf("pending = %d, want 1", p)
	}
	// Quiesce holds nest: a second hold plus one resume stays paused.
	resume2 := ing.Quiesce()
	resume2()
	resume2() // resume functions are once-only; double call is safe
	time.Sleep(10 * time.Millisecond)
	if got := ds.Partitions(); got != 2 {
		t.Fatalf("nested quiesce released early: %d partitions", got)
	}
	resume()
	if _, _, err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := ds.Partitions(); got != 3 {
		t.Fatalf("after resume: %d partitions, want 3", got)
	}
}

// TestBacklogBound checks the backpressure satellite: a bounded queue
// sheds overflowing Submits with ErrBacklogFull without consuming
// anything, and accepts again once the worker drains.
func TestBacklogBound(t *testing.T) {
	ds := testDS(t, 2)
	sess := streamingSession(t, ds, core.Streaming, false)
	ing, err := NewIngestor(sess, WithMaxPending(2))
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()
	dom := ds.Domain()

	resume := ing.Quiesce()
	for i := 0; i < 2; i++ {
		if _, err := ing.Submit(arrival(dom, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ing.Submit(arrival(dom, 1)); !errors.Is(err, ErrBacklogFull) {
		t.Fatalf("overflow err = %v, want ErrBacklogFull", err)
	}
	if shed := ing.Stats().Shed; shed != 1 {
		t.Fatalf("shed = %d, want 1", shed)
	}
	resume()
	ing.Flush()
	if got := ds.Partitions(); got != 4 {
		t.Fatalf("after drain: %d partitions, want 4 (the shed batch must not land)", got)
	}
	if _, err := ing.Submit(arrival(dom, 1)); err != nil {
		t.Fatalf("post-drain submit refused: %v", err)
	}
	ing.Flush()
}

// TestSaveLoadPendingEpochs is the mid-stream durability property on the
// Gaussian path: a snapshot taken under the quiesce barrier captures the
// submitted-but-unapplied epochs, and restoring replays them on the
// fresh session exactly once — no partition double-applies, and the
// Rényi books cover everything queryable.
func TestSaveLoadPendingEpochs(t *testing.T) {
	ds1 := testDS(t, 3)
	dom := ds1.Domain()
	s1 := streamingSession(t, ds1, core.Streaming, true)
	ing1, err := NewIngestor(s1)
	if err != nil {
		t.Fatal(err)
	}

	// One applied arrival, then warm the caches with a query.
	applied := arrival(dom, 7)
	if _, _, err := ing1.Append(applied); err != nil {
		t.Fatal(err)
	}
	q := query.MustNew(dom, map[int][]int{0: {1}}).WithWindow(0, 3)
	if _, err := s1.Answer(q); err != nil {
		t.Fatal(err)
	}

	// Two batches submitted under the quiesce barrier stay pending.
	resume := ing1.Quiesce()
	if _, err := ing1.Submit(arrival(dom, 2), arrival(dom, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := ing1.Submit(arrival(dom, 4)); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := s1.SaveState(&snap); err != nil {
		t.Fatal(err)
	}

	// Rebuild the applied-state dataset (same construction, same applied
	// arrival — hence the same partition count and version the snapshot
	// was taken at) and restore.
	ds2 := testDS(t, 3)
	ds2.AppendPartitions(1)
	if err := ds2.BulkLoad(3, applied.Counts); err != nil {
		t.Fatal(err)
	}
	s2 := streamingSession(t, ds2, core.Streaming, true)
	ing2, err := NewIngestor(s2)
	if err != nil {
		t.Fatal(err)
	}
	defer ing2.Close()
	if err := s2.LoadState(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	ing2.Flush()

	// The three pending arrivals landed exactly once: 4 applied + 3.
	if got := ds2.Partitions(); got != 7 {
		t.Fatalf("restored stream has %d partitions, want 7", got)
	}
	for p, wantPerBin := range map[int]int{4: 2, 5: 3, 6: 4} {
		want := wantPerBin * dom.Size()
		if got := ds2.PartitionN(p); got != want {
			t.Fatalf("partition %d has %d rows, want %d (exactly-once)", p, got, want)
		}
	}
	if got := s2.Accountant().Partitions(); got != 7 {
		t.Fatalf("scalar accountant covers %d partitions, want 7", got)
	}
	if got := s2.RDPAdmission().Block().Partitions(); got != 7 {
		t.Fatalf("Rényi accountant covers %d partitions, want 7", got)
	}

	// Pre-snapshot state survived (free exact hit), and the replayed
	// partitions answer fresh queries with real payments.
	spent := s2.AverageSpent()
	a, err := s2.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.Source != core.SourceExactHit || s2.AverageSpent() != spent {
		t.Fatalf("pre-snapshot query after restore: %+v", a)
	}
	if _, err := s2.Answer(q.WithWindow(6, 6)); err != nil {
		t.Fatal(err)
	}
	if s2.RDPAdmission().Block().SpentDPAt(6) <= 0 {
		t.Fatal("replayed partition answered without charging the Rényi book")
	}

	// A snapshot with pending epochs refuses to restore where no ingestor
	// owns the stream section.
	ds3 := testDS(t, 3)
	ds3.AppendPartitions(1)
	if err := ds3.BulkLoad(3, applied.Counts); err != nil {
		t.Fatal(err)
	}
	s3 := streamingSession(t, ds3, core.Streaming, true)
	if err := s3.LoadState(bytes.NewReader(snap.Bytes())); !errors.Is(err, persist.ErrUnknownSection) {
		t.Fatalf("ingestor-less restore of pending epochs: %v, want ErrUnknownSection", err)
	}

	resume()
	ing1.Close()
}

// TestIdleIngestorSnapshotRestoresAnywhere checks the optional-section
// semantics: an idle ingestor contributes nothing, so its snapshots
// restore into sessions without one.
func TestIdleIngestorSnapshotRestoresAnywhere(t *testing.T) {
	ds := testDS(t, 2)
	sess := streamingSession(t, ds, core.Streaming, false)
	ing, err := NewIngestor(sess)
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()
	var snap bytes.Buffer
	if err := sess.SaveState(&snap); err != nil {
		t.Fatal(err)
	}
	bare := streamingSession(t, ds, core.Streaming, false)
	if err := bare.LoadState(&snap); err != nil {
		t.Fatal(err)
	}
}
