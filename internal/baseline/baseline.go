// Package baseline implements the comparison systems of the Turbo
// evaluation: Direct Laplace (no cache), the Exact-Cache, the
// Tree Exact-Cache (the CacheDP-equivalent design of §6.3), and the
// Laplace Histogram of Appendix C. Vanilla PMW is provided by
// pmw.NewVanilla and Turbo itself by the core package; all satisfy System
// so the experiment harness treats them uniformly.
package baseline

import (
	"fmt"
	"math"

	"repro/internal/accountant"
	"repro/internal/cache"
	"repro/internal/dataset"
	"repro/internal/interval"
	"repro/internal/kvstore"
	"repro/internal/noise"
	"repro/internal/query"
	"repro/internal/store"
)

// backendOrPrivate returns be, or a private unbounded store when nil —
// the documented fallback for baselines, which never share caching state
// across systems.
func backendOrPrivate(be store.Backend) store.Backend {
	if be == nil {
		// Baselines own a private, unshared store by design; no pluggable
		// backend can be injected here without changing baseline semantics.
		return kvstore.New() //turbo:allow(backendonly)
	}
	return be
}

// System answers linear queries end-to-end under a global DP guarantee.
type System interface {
	// Run answers q (α, β)-accurately or returns
	// accountant.ErrBudgetExhausted (wrapped) once the guarantee binds.
	Run(q *query.Query) (float64, error)
	// Name identifies the system in experiment output.
	Name() string
}

// window resolves a query's partition range, defaulting to the whole store.
func window(q *query.Query, ds *dataset.Dataset) (int, int) {
	if s, e, ok := q.Window(); ok {
		return s, e
	}
	return 0, ds.Partitions() - 1
}

// DirectLaplace answers every query with a fresh Laplace execution — the
// behaviour of DP SQL engines without any cache. Per-query budget uses the
// same calibration as Turbo (ε = 4ln(1/β)/nα) so that comparisons isolate
// caching behaviour rather than calibration choices.
type DirectLaplace struct {
	Alpha, Beta float64
	Exec        *dataset.Executor
	Block       *accountant.Block
}

// NewDirectLaplace builds the no-cache baseline.
func NewDirectLaplace(alpha, beta float64, exec *dataset.Executor, block *accountant.Block) *DirectLaplace {
	return &DirectLaplace{Alpha: alpha, Beta: beta, Exec: exec, Block: block}
}

// Run implements System.
func (d *DirectLaplace) Run(q *query.Query) (float64, error) {
	start, end := window(q, d.Exec.Dataset())
	n, err := d.Exec.Dataset().NRows(start, end)
	if err != nil {
		return 0, err
	}
	eps := noise.EpsilonForAccuracy(d.Alpha, d.Beta, n)
	if err := d.Block.PayRange(start, end, eps); err != nil {
		return 0, err
	}
	return d.Exec.ExecuteDP(q, start, end, eps, math.NaN())
}

// Name implements System.
func (d *DirectLaplace) Name() string { return "laplace" }

// ExactCache answers repeats for free from an exact-match cache and falls
// back to Direct Laplace on misses. On partitioned stores the cache key
// includes the window, and budget is paid against the touched partitions.
type ExactCache struct {
	Alpha, Beta float64
	Exec        *dataset.Executor
	Block       *accountant.Block
	cache       *cache.Exact
}

// NewExactCache builds the exact-match cache baseline over be (nil for a
// private store).
func NewExactCache(alpha, beta float64, exec *dataset.Executor, block *accountant.Block, be store.Backend) *ExactCache {
	c, err := cache.NewExact(backendOrPrivate(be), "exact")
	if err != nil {
		panic(err) // unreachable: the backend is never nil here
	}
	return &ExactCache{
		Alpha: alpha, Beta: beta, Exec: exec, Block: block,
		cache: c,
	}
}

// Run implements System.
func (c *ExactCache) Run(q *query.Query) (float64, error) {
	start, end := window(q, c.Exec.Dataset())
	version, err := c.Exec.Dataset().RangeVersion(start, end)
	if err != nil {
		return 0, err
	}
	if e, ok := c.cache.Get(q, version); ok {
		return e.Value, nil
	}
	n, err := c.Exec.Dataset().NRows(start, end)
	if err != nil {
		return 0, err
	}
	eps := noise.EpsilonForAccuracy(c.Alpha, c.Beta, n)
	if err := c.Block.PayRange(start, end, eps); err != nil {
		return 0, err
	}
	r, err := c.Exec.ExecuteDP(q, start, end, eps, math.NaN())
	if err != nil {
		return 0, err
	}
	if err := c.cache.Put(q, version, r, eps); err != nil {
		return 0, err
	}
	return r, nil
}

// Name implements System.
func (c *ExactCache) Name() string { return "exact-cache" }

// Cache exposes hit statistics.
func (c *ExactCache) Cache() *cache.Exact { return c.cache }

// TreeExactCache splits each query along the dyadic tree and keeps one
// exact cache per node, so sub-results are shared across overlapping
// windows. Per-node executions are calibrated pessimistically — accuracy
// (α, β/mMax) per node, mMax the worst-case split size — so any future
// combination of cached node results stays (α, β)-accurate. This extra
// "aggregation error" budget is exactly why the paper finds this design
// can lose to a flat Exact-Cache when the query pool is small (§6.4).
type TreeExactCache struct {
	Alpha, Beta float64
	Exec        *dataset.Executor
	Block       *accountant.Block
	cache       *cache.Exact
}

// NewTreeExactCache builds the per-node exact-match cache baseline over
// be (nil for a private store).
func NewTreeExactCache(alpha, beta float64, exec *dataset.Executor, block *accountant.Block, be store.Backend) *TreeExactCache {
	c, err := cache.NewExact(backendOrPrivate(be), "tree-exact")
	if err != nil {
		panic(err) // unreachable: the backend is never nil here
	}
	return &TreeExactCache{
		Alpha: alpha, Beta: beta, Exec: exec, Block: block,
		cache: c,
	}
}

// maxSplit returns the worst-case number of split nodes for the current
// partition count.
func maxSplit(partitions int) int {
	m := 0
	for 1<<m < partitions {
		m++
	}
	return interval.MaxSplitNodes(m)
}

// Run implements System.
func (c *TreeExactCache) Run(q *query.Query) (float64, error) {
	ds := c.Exec.Dataset()
	start, end := window(q, ds)
	nodes := interval.Split(start, end)
	mMax := maxSplit(ds.Partitions())
	betaNode := c.Beta / float64(mMax)

	total := 0
	weighted := 0.0
	for _, node := range nodes {
		nq := q.WithWindow(node.Start, node.End)
		ni, err := ds.NRows(node.Start, node.End)
		if err != nil {
			return 0, err
		}
		if ni == 0 {
			continue
		}
		version, err := ds.RangeVersion(node.Start, node.End)
		if err != nil {
			return 0, err
		}
		var value float64
		if e, ok := c.cache.Get(nq, version); ok {
			value = e.Value
		} else {
			eps := noise.EpsilonForAccuracy(c.Alpha, betaNode, ni)
			if err := c.Block.PayRange(node.Start, node.End, eps); err != nil {
				return 0, err
			}
			value, err = c.Exec.ExecuteDP(nq, node.Start, node.End, eps, math.NaN())
			if err != nil {
				return 0, err
			}
			if err := c.cache.Put(nq, version, value, eps); err != nil {
				return 0, err
			}
		}
		weighted += float64(ni) * value
		total += ni
	}
	if total == 0 {
		return 0, nil
	}
	return weighted / float64(total), nil
}

// Name implements System.
func (c *TreeExactCache) Name() string { return "tree-exact-cache" }

// Cache exposes hit statistics.
func (c *TreeExactCache) Cache() *cache.Exact { return c.cache }

// LaplaceHistogram is the Appendix C baseline: pay once for a noisy count
// of every domain bin (L1 sensitivity 2), then answer arbitrarily many
// linear queries by post-processing. Its one-shot cost grows with
// sqrt(|X|), so it beats Direct Laplace only after ~2sqrt(2|X|/β)/ln(1/β)
// queries.
type LaplaceHistogram struct {
	Alpha, Beta float64
	Exec        *dataset.Executor
	Block       *accountant.Block
	rng         *noise.Rng

	noisy []float64 // noisy per-bin fractions, nil until first query
	paid  float64
}

// NewLaplaceHistogram builds the one-shot noisy histogram baseline.
func NewLaplaceHistogram(alpha, beta float64, exec *dataset.Executor, block *accountant.Block, rng *noise.Rng) *LaplaceHistogram {
	return &LaplaceHistogram{Alpha: alpha, Beta: beta, Exec: exec, Block: block, rng: rng}
}

// Run implements System. The first query pays ε_Histogram and materializes
// the noisy histogram over the full store; every query (including the
// first) is then answered by post-processing.
func (l *LaplaceHistogram) Run(q *query.Query) (float64, error) {
	ds := l.Exec.Dataset()
	if l.noisy == nil {
		n := ds.NRowsAll()
		if n == 0 {
			return 0, fmt.Errorf("baseline: empty dataset")
		}
		eps := noise.LaplaceHistogramEpsilon(l.Alpha, l.Beta, n, ds.Domain().Size())
		if err := l.Block.PayRange(0, ds.Partitions()-1, eps); err != nil {
			return 0, err
		}
		l.paid = eps
		dist, err := ds.TrueDistribution(0, ds.Partitions()-1)
		if err != nil {
			return 0, err
		}
		l.noisy = dist
		for i := range l.noisy {
			l.noisy[i] += l.rng.Laplace(2 / (eps * float64(n)))
		}
	}
	return q.Eval(l.noisy), nil
}

// Name implements System.
func (l *LaplaceHistogram) Name() string { return "laplace-histogram" }

// Paid returns the one-shot budget spent, or 0 before the first query.
func (l *LaplaceHistogram) Paid() float64 { return l.paid }
