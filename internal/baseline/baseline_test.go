package baseline

import (
	"errors"
	"math"
	"testing"

	"repro/internal/accountant"
	"repro/internal/dataset"
	"repro/internal/domain"
	"repro/internal/noise"
	"repro/internal/query"
)

func build(t *testing.T, partitions int) (*domain.Domain, *dataset.Dataset) {
	t.Helper()
	dom := domain.MustNew(
		domain.Attribute{Name: "p", Card: 2},
		domain.Attribute{Name: "a", Card: 4},
	)
	ds := dataset.New(dom, partitions)
	for w := 0; w < partitions; w++ {
		for a := 0; a < 4; a++ {
			_ = ds.AddCount(w, dom.Encode([]int{1, a}), 1000+100*a+10*w)
			_ = ds.AddCount(w, dom.Encode([]int{0, a}), 4000-100*a)
		}
	}
	return dom, ds
}

func sys(ds *dataset.Dataset, global float64, seed uint64) (*dataset.Executor, *accountant.Block) {
	return dataset.NewExecutor(ds, noise.NewRng(seed)), accountant.NewBlock(global, ds.Partitions())
}

func TestDirectLaplaceAccuracyAndLinearSpend(t *testing.T) {
	dom, ds := build(t, 1)
	exec, block := sys(ds, 1000, 3)
	lap := NewDirectLaplace(0.05, 0.001, exec, block)
	if lap.Name() != "laplace" {
		t.Fatal("name")
	}
	q := query.MustNew(dom, map[int][]int{0: {1}})
	truth, _ := ds.TrueFraction(q, 0, 0)
	eps := noise.EpsilonForAccuracy(0.05, 0.001, ds.NRowsAll())
	bad := 0
	for i := 1; i <= 100; i++ {
		r, err := lap.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r-truth) > 0.05 {
			bad++
		}
		if math.Abs(block.AverageSpent()-float64(i)*eps) > 1e-9 {
			t.Fatalf("spend not linear at query %d: %g", i, block.AverageSpent())
		}
	}
	if bad > 2 {
		t.Fatalf("%d/100 answers outside α", bad)
	}
}

func TestDirectLaplaceWindowCharges(t *testing.T) {
	dom, ds := build(t, 4)
	exec, block := sys(ds, 1000, 4)
	lap := NewDirectLaplace(0.05, 0.001, exec, block)
	q := query.MustNew(dom, map[int][]int{0: {1}}).WithWindow(1, 2)
	if _, err := lap.Run(q); err != nil {
		t.Fatal(err)
	}
	if block.SpentAt(0) != 0 || block.SpentAt(3) != 0 {
		t.Fatal("partitions outside window charged")
	}
	if block.SpentAt(1) == 0 || block.SpentAt(2) == 0 {
		t.Fatal("window partitions not charged")
	}
}

func TestDirectLaplaceExhaustion(t *testing.T) {
	dom, ds := build(t, 1)
	exec, block := sys(ds, 1e-9, 5)
	lap := NewDirectLaplace(0.05, 0.001, exec, block)
	if _, err := lap.Run(query.MustNew(dom, nil)); !errors.Is(err, accountant.ErrBudgetExhausted) {
		t.Fatalf("err = %v", err)
	}
}

func TestExactCacheRepeatsAreFree(t *testing.T) {
	dom, ds := build(t, 1)
	exec, block := sys(ds, 1000, 7)
	ec := NewExactCache(0.05, 0.001, exec, block, nil)
	q := query.MustNew(dom, map[int][]int{0: {1}})
	r1, err := ec.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	spent := block.AverageSpent()
	for i := 0; i < 10; i++ {
		r2, err := ec.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		if r2 != r1 {
			t.Fatal("cache returned different value for identical query")
		}
	}
	if block.AverageSpent() != spent {
		t.Fatal("repeat queries consumed budget")
	}
	hits, _ := ec.Cache().Stats()
	if hits != 10 {
		t.Fatalf("hits = %d", hits)
	}
}

func TestExactCacheInvalidatedByDataChange(t *testing.T) {
	dom, ds := build(t, 1)
	exec, block := sys(ds, 1000, 8)
	ec := NewExactCache(0.05, 0.001, exec, block, nil)
	q := query.MustNew(dom, map[int][]int{0: {1}})
	if _, err := ec.Run(q); err != nil {
		t.Fatal(err)
	}
	spent := block.AverageSpent()
	_ = ds.AddCount(0, 0, 5)
	if _, err := ec.Run(q); err != nil {
		t.Fatal(err)
	}
	if block.AverageSpent() <= spent {
		t.Fatal("stale cache served after mutation")
	}
}

func TestTreeExactCacheSharesSubresults(t *testing.T) {
	dom, ds := build(t, 8)
	exec, block := sys(ds, 1000, 9)
	tc := NewTreeExactCache(0.05, 0.001, exec, block, nil)
	if tc.Name() != "tree-exact-cache" {
		t.Fatal("name")
	}
	// [0,3] splits to node [0,3]; later [0,5] reuses it and only pays for
	// [4,5].
	q1 := query.MustNew(dom, map[int][]int{0: {1}}).WithWindow(0, 3)
	if _, err := tc.Run(q1); err != nil {
		t.Fatal(err)
	}
	spent45 := block.SpentAt(4)
	if spent45 != 0 {
		t.Fatal("untouched partition charged")
	}
	spent0 := block.SpentAt(0)
	q2 := query.MustNew(dom, map[int][]int{0: {1}}).WithWindow(0, 5)
	if _, err := tc.Run(q2); err != nil {
		t.Fatal(err)
	}
	if block.SpentAt(0) != spent0 {
		t.Fatal("cached node re-paid")
	}
	if block.SpentAt(4) == 0 {
		t.Fatal("new node not paid")
	}
	hits, _ := tc.Cache().Stats()
	if hits != 1 {
		t.Fatalf("node cache hits = %d, want 1", hits)
	}
}

func TestTreeExactCacheAccuracy(t *testing.T) {
	dom, ds := build(t, 8)
	exec, block := sys(ds, 10000, 10)
	tc := NewTreeExactCache(0.05, 0.001, exec, block, nil)
	q := query.MustNew(dom, map[int][]int{0: {1}}).WithWindow(1, 6)
	truth, _ := ds.TrueFraction(q, 1, 6)
	r, err := tc.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-truth) > 0.05 {
		t.Fatalf("combined answer %g vs truth %g", r, truth)
	}
}

func TestTreeExactCacheCostsMoreThanFlatPerMiss(t *testing.T) {
	// The pessimistic per-node calibration makes a single cold window
	// more expensive than the flat Exact-Cache on the same window — the
	// §6.4 observation that lets the flat cache win on small pools.
	dom, ds := build(t, 8)
	execA, blockA := sys(ds, 10000, 11)
	flat := NewExactCache(0.05, 0.001, execA, blockA, nil)
	execB, blockB := sys(ds, 10000, 12)
	treeC := NewTreeExactCache(0.05, 0.001, execB, blockB, nil)
	q := query.MustNew(dom, map[int][]int{0: {1}}).WithWindow(1, 6) // splits into 3 nodes
	if _, err := flat.Run(q); err != nil {
		t.Fatal(err)
	}
	if _, err := treeC.Run(q); err != nil {
		t.Fatal(err)
	}
	if blockB.MaxSpent() <= blockA.MaxSpent() {
		t.Fatalf("tree miss %g not more expensive than flat miss %g",
			blockB.MaxSpent(), blockA.MaxSpent())
	}
}

func TestLaplaceHistogramOneShot(t *testing.T) {
	dom, ds := build(t, 1)
	exec, block := sys(ds, 1000, 13)
	lh := NewLaplaceHistogram(0.05, 0.001, exec, block, noise.NewRng(99))
	if lh.Name() != "laplace-histogram" {
		t.Fatal("name")
	}
	if lh.Paid() != 0 {
		t.Fatal("paid before first query")
	}
	q1 := query.MustNew(dom, map[int][]int{0: {1}})
	truth, _ := ds.TrueFraction(q1, 0, 0)
	r, err := lh.Run(q1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-truth) > 0.05 {
		t.Fatalf("histogram answer %g vs truth %g", r, truth)
	}
	paid := block.AverageSpent()
	want := noise.LaplaceHistogramEpsilon(0.05, 0.001, ds.NRowsAll(), dom.Size())
	if math.Abs(paid-want) > 1e-12 {
		t.Fatalf("one-shot cost %g, want %g", paid, want)
	}
	// Everything after is post-processing: free, any query.
	for a := 0; a < 4; a++ {
		if _, err := lh.Run(query.MustNew(dom, map[int][]int{1: {a}})); err != nil {
			t.Fatal(err)
		}
	}
	if block.AverageSpent() != paid {
		t.Fatal("post-processing consumed budget")
	}
}

func TestLaplaceHistogramEmptyDataset(t *testing.T) {
	dom := domain.MustNew(domain.Attribute{Name: "x", Card: 2})
	ds := dataset.New(dom, 1)
	exec, block := sys(ds, 1000, 14)
	lh := NewLaplaceHistogram(0.05, 0.001, exec, block, noise.NewRng(1))
	if _, err := lh.Run(query.MustNew(dom, nil)); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestSystemsShareInterface(t *testing.T) {
	dom, ds := build(t, 2)
	exec, block := sys(ds, 1000, 15)
	systems := []System{
		NewDirectLaplace(0.05, 0.001, exec, block),
		NewExactCache(0.05, 0.001, exec, block, nil),
		NewTreeExactCache(0.05, 0.001, exec, block, nil),
		NewLaplaceHistogram(0.05, 0.001, exec, block, noise.NewRng(2)),
	}
	q := query.MustNew(dom, map[int][]int{0: {1}})
	for _, s := range systems {
		if _, err := s.Run(q); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
	}
}
