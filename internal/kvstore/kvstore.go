// Package kvstore is an embedded key-value store standing in for the Redis
// instance that the Turbo prototype uses to hold all caching state (§5):
// exact-cache entries, PMW histograms, SV state, and heuristic thresholds.
//
// It provides namespaced string keys with arbitrary gob-encoded values,
// optimistic versioning, and whole-store snapshot/restore — the subset of
// Redis semantics Turbo relies on. The paper notes Redis "can be replaced
// with a persistent, consistent and durable storage service"; snapshots to
// an io.Writer play that role here.
package kvstore

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Store is an in-memory namespaced KV store, safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	data    map[string][]byte
	version uint64
}

// New returns an empty store.
func New() *Store {
	return &Store{data: make(map[string][]byte)}
}

// key joins a namespace and key the way Redis conventions do.
func key(ns, k string) string { return ns + ":" + k }

// Set stores value (gob-encoded) under ns:k.
func (s *Store) Set(ns, k string, value any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(value); err != nil {
		return fmt.Errorf("kvstore: encode %s:%s: %w", ns, k, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data[key(ns, k)] = buf.Bytes()
	s.version++
	return nil
}

// Get loads ns:k into out (a pointer), reporting whether the key existed.
func (s *Store) Get(ns, k string, out any) (bool, error) {
	s.mu.RLock()
	raw, ok := s.data[key(ns, k)]
	s.mu.RUnlock()
	if !ok {
		return false, nil
	}
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(out); err != nil {
		return true, fmt.Errorf("kvstore: decode %s:%s: %w", ns, k, err)
	}
	return true, nil
}

// Delete removes ns:k, reporting whether it existed.
func (s *Store) Delete(ns, k string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	full := key(ns, k)
	_, ok := s.data[full]
	if ok {
		delete(s.data, full)
		s.version++
	}
	return ok
}

// Keys returns the sorted keys of a namespace (without the prefix).
func (s *Store) Keys(ns string) []string {
	prefix := ns + ":"
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for k := range s.data {
		if strings.HasPrefix(k, prefix) {
			out = append(out, strings.TrimPrefix(k, prefix))
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the total number of stored keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Version increments on every mutation.
func (s *Store) Version() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// MemoryBytes returns the total size of stored values plus keys — the
// figure the §6.5 memory evaluation reports for caching state.
func (s *Store) MemoryBytes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := 0
	for k, v := range s.data {
		total += len(k) + len(v)
	}
	return total
}

// snapshot is the gob wire format of a store.
type snapshot struct {
	Version uint64
	Data    map[string][]byte
}

// Snapshot serializes the whole store.
func (s *Store) Snapshot(w io.Writer) error {
	s.mu.RLock()
	snap := snapshot{Version: s.version, Data: make(map[string][]byte, len(s.data))}
	for k, v := range s.data {
		snap.Data[k] = v
	}
	s.mu.RUnlock()
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("kvstore: snapshot: %w", err)
	}
	return nil
}

// Restore replaces the store contents with a snapshot previously written by
// Snapshot.
func (s *Store) Restore(r io.Reader) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("kvstore: restore: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data = snap.Data
	if s.data == nil {
		s.data = make(map[string][]byte)
	}
	s.version = snap.Version
	return nil
}
