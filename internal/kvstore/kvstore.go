// Package kvstore is an embedded key-value store standing in for the Redis
// instance that the Turbo prototype uses to hold all caching state (§5):
// exact-cache entries, PMW histograms, SV state, and heuristic thresholds.
//
// It provides namespaced string keys with arbitrary gob-encoded values,
// optimistic versioning, and per-namespace export/import — the subset of
// Redis semantics Turbo relies on. The paper notes Redis "can be replaced
// with a persistent, consistent and durable storage service"; the
// internal/persist snapshot envelope plays that role, each exact cache
// persisting its namespace as one section.
//
// Store is the default, unbounded implementation of store.Backend (the
// pluggable storage contract every caching layer programs against); the
// memory-bounded segmented-LRU alternative lives in internal/store.
//
// The store is internally striped by key hash (the way a Redis Cluster
// spreads its hash slots), so concurrent shards of the query pipeline that
// read and write different namespaces do not contend on a single lock.
package kvstore

import (
	"bytes"
	"hash/maphash"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/store"
)

// numStripes is the number of independent lock+map stripes. A power of two
// comfortably above typical core counts keeps collision contention low
// while costing only a few empty maps for small stores.
const numStripes = 16

// stripe is one lock-protected slice of the keyspace.
type stripe struct {
	mu   sync.RWMutex
	data map[string][]byte
}

// Store is an in-memory namespaced KV store, safe for concurrent use.
type Store struct {
	stripes [numStripes]stripe
	seed    maphash.Seed
	version atomic.Uint64

	hits, misses, sets, deletes atomic.Int64
}

// compile-time check: Store is a store.Backend.
var _ store.Backend = (*Store)(nil)

// New returns an empty store.
func New() *Store {
	s := &Store{seed: maphash.MakeSeed()}
	for i := range s.stripes {
		s.stripes[i].data = make(map[string][]byte)
	}
	return s
}

// key joins a namespace and key the way Redis conventions do.
func key(ns, k string) string { return ns + ":" + k }

// stripeFor hashes a full key onto its stripe.
func (s *Store) stripeFor(full string) *stripe {
	h := maphash.String(s.seed, full)
	return &s.stripes[h&(numStripes-1)]
}

// Set stores value under ns:k, encoded through the value's FastEncoder
// when implemented (the hot-entry fixed-layout codec) and gob otherwise.
func (s *Store) Set(ns, k string, value any) error {
	raw, err := store.EncodeValue(ns, k, value)
	if err != nil {
		return err
	}
	full := key(ns, k)
	st := s.stripeFor(full)
	st.mu.Lock()
	st.data[full] = raw
	st.mu.Unlock()
	s.sets.Add(1)
	s.version.Add(1)
	return nil
}

// SetWeighted stores value under ns:k. The unbounded store never evicts,
// so the eviction weight is ignored.
func (s *Store) SetWeighted(ns, k string, value any, _ float64) error {
	return s.Set(ns, k, value)
}

// SetNX stores value under ns:k only if the key is absent, reporting
// whether it stored.
func (s *Store) SetNX(ns, k string, value any) (bool, error) {
	raw, err := store.EncodeValue(ns, k, value)
	if err != nil {
		return false, err
	}
	full := key(ns, k)
	st := s.stripeFor(full)
	st.mu.Lock()
	if _, ok := st.data[full]; ok {
		st.mu.Unlock()
		return false, nil
	}
	st.data[full] = raw
	st.mu.Unlock()
	s.sets.Add(1)
	s.version.Add(1)
	return true, nil
}

// Get loads ns:k into out (a pointer), reporting whether the key existed.
func (s *Store) Get(ns, k string, out any) (bool, error) {
	full := key(ns, k)
	st := s.stripeFor(full)
	st.mu.RLock()
	raw, ok := st.data[full]
	st.mu.RUnlock()
	if !ok {
		s.misses.Add(1)
		return false, nil
	}
	s.hits.Add(1)
	if err := store.DecodeValue(ns, k, raw, out); err != nil {
		return true, err
	}
	return true, nil
}

// Delete removes ns:k, reporting whether it existed.
func (s *Store) Delete(ns, k string) bool {
	full := key(ns, k)
	st := s.stripeFor(full)
	st.mu.Lock()
	_, ok := st.data[full]
	if ok {
		delete(st.data, full)
	}
	st.mu.Unlock()
	if ok {
		s.deletes.Add(1)
		s.version.Add(1)
	}
	return ok
}

// CompareDelete removes ns:k only if its stored bytes equal the encoding
// of expect, reporting whether a delete happened. It is the guarded
// invalidation primitive: a concurrent Set of a fresh value changes the
// bytes, so a stale-entry eviction can never erase it.
func (s *Store) CompareDelete(ns, k string, expect any) bool {
	want, err := store.EncodeValue(ns, k, expect)
	if err != nil {
		return false
	}
	full := key(ns, k)
	st := s.stripeFor(full)
	st.mu.Lock()
	raw, ok := st.data[full]
	if ok && bytes.Equal(raw, want) {
		delete(st.data, full)
	} else {
		ok = false
	}
	st.mu.Unlock()
	if ok {
		s.deletes.Add(1)
		s.version.Add(1)
	}
	return ok
}

// Keys returns the sorted keys of a namespace (without the prefix).
func (s *Store) Keys(ns string) []string {
	prefix := ns + ":"
	var out []string
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		for k := range st.data {
			if strings.HasPrefix(k, prefix) {
				out = append(out, strings.TrimPrefix(k, prefix))
			}
		}
		st.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// Len returns the total number of stored keys.
func (s *Store) Len() int {
	total := 0
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		total += len(st.data)
		st.mu.RUnlock()
	}
	return total
}

// Version increments on every mutation.
func (s *Store) Version() uint64 { return s.version.Load() }

// MemoryBytes returns the total size of stored values plus keys — the
// figure the §6.5 memory evaluation reports for caching state.
func (s *Store) MemoryBytes() int {
	total := 0
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		for k, v := range st.data {
			total += len(k) + len(v)
		}
		st.mu.RUnlock()
	}
	return total
}

// ExportNamespace returns the raw stored bytes of every key in ns (keys
// without the prefix), for per-namespace persistence: each exact cache
// snapshots exactly the slice of the store it owns.
func (s *Store) ExportNamespace(ns string) map[string][]byte {
	prefix := ns + ":"
	out := make(map[string][]byte)
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		for k, v := range st.data {
			if strings.HasPrefix(k, prefix) {
				out[strings.TrimPrefix(k, prefix)] = v
			}
		}
		st.mu.RUnlock()
	}
	return out
}

// ImportNamespace replaces the contents of ns with previously-exported
// raw entries, leaving every other namespace untouched.
func (s *Store) ImportNamespace(ns string, data map[string][]byte) {
	prefix := ns + ":"
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		for k := range st.data {
			if strings.HasPrefix(k, prefix) {
				delete(st.data, k)
			}
		}
		st.mu.Unlock()
	}
	for k, v := range data {
		full := prefix + k
		st := s.stripeFor(full)
		st.mu.Lock()
		st.data[full] = append([]byte(nil), v...)
		st.mu.Unlock()
	}
	s.version.Add(1)
}

// Stats returns the store's operation counters and memory accounting.
// The striped map never evicts and has no caps, so those fields are zero.
func (s *Store) Stats() store.Stats {
	return store.Stats{
		Backend: "striped-map",
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Sets:    s.sets.Load(),
		Deletes: s.deletes.Load(),
		Entries: s.Len(),
		Bytes:   s.MemoryBytes(),
	}
}
