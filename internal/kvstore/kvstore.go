// Package kvstore is an embedded key-value store standing in for the Redis
// instance that the Turbo prototype uses to hold all caching state (§5):
// exact-cache entries, PMW histograms, SV state, and heuristic thresholds.
//
// It provides namespaced string keys with arbitrary gob-encoded values,
// optimistic versioning, lease/CAS coordination primitives, and
// per-namespace export/import — the subset of Redis semantics Turbo relies
// on. The paper notes Redis "can be replaced with a persistent, consistent
// and durable storage service"; store.File plays that role for durable
// deployments, and the internal/persist snapshot envelope for checkpoints.
//
// Store is the default, unbounded implementation of store.Backend (the
// pluggable storage contract every caching layer programs against); the
// memory-bounded segmented-LRU alternative lives in internal/store.
//
// The store is internally striped by key hash (the way a Redis Cluster
// spreads its hash slots), so concurrent shards of the query pipeline that
// read and write different namespaces do not contend on a single lock.
package kvstore

import (
	"bytes"
	"hash/maphash"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/store"
)

// numStripes is the number of independent lock+map stripes. A power of two
// comfortably above typical core counts keeps collision contention low
// while costing only a few empty maps for small stores.
const numStripes = 16

// entry is one stored value plus the metadata the Backend contract
// round-trips: the eviction weight (ignored here — the unbounded store
// never evicts — but preserved for export/migration), the guard pin, and
// the lease deadline/ttl (unix nanos; deadline 0 = no expiry).
type entry struct {
	val      []byte
	weight   float64
	pinned   bool
	deadline int64
	ttl      int64
}

// stripe is one lock-protected slice of the keyspace.
type stripe struct {
	mu   sync.RWMutex
	data map[string]*entry
}

// Store is an in-memory namespaced KV store, safe for concurrent use.
type Store struct {
	stripes [numStripes]stripe
	seed    maphash.Seed
	version atomic.Uint64

	// nowNanos is the lease clock (unix nanos); tests substitute a fake.
	nowNanos func() int64

	hits, misses, sets, deletes atomic.Int64
	decodeErrors                atomic.Int64
}

// compile-time check: Store is a store.Backend.
var _ store.Backend = (*Store)(nil)

// New returns an empty store.
func New() *Store {
	s := &Store{
		seed:     maphash.MakeSeed(),
		nowNanos: func() int64 { return time.Now().UnixNano() },
	}
	for i := range s.stripes {
		s.stripes[i].data = make(map[string]*entry)
	}
	return s
}

// key joins a namespace and key the way Redis conventions do.
func key(ns, k string) string { return ns + ":" + k }

// stripeFor hashes a full key onto its stripe.
func (s *Store) stripeFor(full string) *stripe {
	h := maphash.String(s.seed, full)
	return &s.stripes[h&(numStripes-1)]
}

// expired reports whether e carries a lease whose deadline passed. Expired
// entries count as absent everywhere and are reclaimed lazily by the
// access that observes them.
func (s *Store) expired(e *entry) bool {
	return e.deadline > 0 && s.nowNanos() > e.deadline
}

// Set stores value under ns:k, encoded through the value's FastEncoder
// when implemented (the hot-entry fixed-layout codec) and gob otherwise.
// A plain write over a guard or lease makes it a plain entry again.
func (s *Store) Set(ns, k string, value any) error {
	return s.SetWeighted(ns, k, value, 0)
}

// SetWeighted stores value under ns:k with an eviction weight. The
// unbounded store never evicts, but the weight is kept so exports carry it
// into memory-bounded backends.
func (s *Store) SetWeighted(ns, k string, value any, weight float64) error {
	raw, err := store.EncodeValue(ns, k, value)
	if err != nil {
		return err
	}
	full := key(ns, k)
	st := s.stripeFor(full)
	st.mu.Lock()
	st.data[full] = &entry{val: raw, weight: weight}
	st.mu.Unlock()
	s.sets.Add(1)
	s.version.Add(1)
	return nil
}

// SetNX stores value under ns:k only if the key is absent, reporting
// whether it stored. The key is marked as a pinned guard (metadata the
// unbounded store only round-trips — nothing here evicts anyway).
func (s *Store) SetNX(ns, k string, value any) (bool, error) {
	return s.SetNXLease(ns, k, value, 0)
}

// SetNXLease stores value under ns:k only if the key is absent or its
// previous lease expired, leasing it for ttl (ttl <= 0 = permanent guard).
func (s *Store) SetNXLease(ns, k string, value any, ttl time.Duration) (bool, error) {
	raw, err := store.EncodeValue(ns, k, value)
	if err != nil {
		return false, err
	}
	full := key(ns, k)
	st := s.stripeFor(full)
	var deadline, ttlN int64
	if ttl > 0 {
		ttlN = int64(ttl)
		deadline = s.nowNanos() + ttlN
	}
	st.mu.Lock()
	if e, ok := st.data[full]; ok && !s.expired(e) {
		st.mu.Unlock()
		return false, nil
	}
	st.data[full] = &entry{val: raw, pinned: true, deadline: deadline, ttl: ttlN}
	st.mu.Unlock()
	s.sets.Add(1)
	s.version.Add(1)
	return true, nil
}

// CompareSwap replaces the value under ns:k only if it is present,
// unexpired, and stores exactly the encoding of expect. Weight and pin
// survive, and a leased key's deadline is renewed by its original ttl —
// CompareSwap(ns, k, mine, mine) is lease renewal.
func (s *Store) CompareSwap(ns, k string, expect, next any) (bool, error) {
	want, err := store.EncodeValue(ns, k, expect)
	if err != nil {
		return false, err
	}
	raw, err := store.EncodeValue(ns, k, next)
	if err != nil {
		return false, err
	}
	full := key(ns, k)
	st := s.stripeFor(full)
	st.mu.Lock()
	e, ok := st.data[full]
	if !ok || s.expired(e) || !bytes.Equal(e.val, want) {
		st.mu.Unlock()
		return false, nil
	}
	e.val = raw
	if e.ttl > 0 {
		e.deadline = s.nowNanos() + e.ttl
	}
	st.mu.Unlock()
	s.sets.Add(1)
	s.version.Add(1)
	return true, nil
}

// Get loads ns:k into out (a pointer), reporting whether the key existed.
// An expired lease counts as absent and is reclaimed on the way out. Bytes
// that fail to decode are a poisoned entry, not a hit: the entry is
// deleted (byte-guarded against a concurrent fresh Set), the decode-error
// counter bumps, and the caller sees a miss plus the error.
func (s *Store) Get(ns, k string, out any) (bool, error) {
	full := key(ns, k)
	st := s.stripeFor(full)
	st.mu.RLock()
	e, ok := st.data[full]
	var raw []byte
	if ok {
		if s.expired(e) {
			ok = false
		} else {
			raw = e.val
		}
	}
	st.mu.RUnlock()
	if !ok {
		if e != nil {
			st.mu.Lock()
			if e2, ok2 := st.data[full]; ok2 && e2 == e {
				delete(st.data, full)
			}
			st.mu.Unlock()
		}
		s.misses.Add(1)
		return false, nil
	}
	if err := store.DecodeValue(ns, k, raw, out); err != nil {
		st.mu.Lock()
		if e2, ok2 := st.data[full]; ok2 && bytes.Equal(e2.val, raw) {
			delete(st.data, full)
		}
		st.mu.Unlock()
		s.decodeErrors.Add(1)
		s.misses.Add(1)
		s.version.Add(1)
		return false, err
	}
	s.hits.Add(1)
	return true, nil
}

// Delete removes ns:k, reporting whether it existed.
func (s *Store) Delete(ns, k string) bool {
	full := key(ns, k)
	st := s.stripeFor(full)
	st.mu.Lock()
	_, ok := st.data[full]
	if ok {
		delete(st.data, full)
	}
	st.mu.Unlock()
	if ok {
		s.deletes.Add(1)
		s.version.Add(1)
	}
	return ok
}

// CompareDelete removes ns:k only if its stored bytes equal the encoding
// of expect, reporting whether a delete happened. It is the guarded
// invalidation primitive: a concurrent Set of a fresh value changes the
// bytes, so a stale-entry eviction can never erase it. An expired lease
// counts as absent — its holder no longer owns the key.
func (s *Store) CompareDelete(ns, k string, expect any) bool {
	want, err := store.EncodeValue(ns, k, expect)
	if err != nil {
		return false
	}
	full := key(ns, k)
	st := s.stripeFor(full)
	st.mu.Lock()
	e, ok := st.data[full]
	if ok && !s.expired(e) && bytes.Equal(e.val, want) {
		delete(st.data, full)
	} else {
		ok = false
	}
	st.mu.Unlock()
	if ok {
		s.deletes.Add(1)
		s.version.Add(1)
	}
	return ok
}

// Keys returns the sorted keys of a namespace (without the prefix),
// skipping expired leases.
func (s *Store) Keys(ns string) []string {
	prefix := ns + ":"
	var out []string
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		for k, e := range st.data {
			if strings.HasPrefix(k, prefix) && !s.expired(e) {
				out = append(out, strings.TrimPrefix(k, prefix))
			}
		}
		st.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// Len returns the total number of stored keys.
func (s *Store) Len() int {
	total := 0
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		total += len(st.data)
		st.mu.RUnlock()
	}
	return total
}

// Version increments on every mutation.
func (s *Store) Version() uint64 { return s.version.Load() }

// MemoryBytes returns the total size of stored values plus keys — the
// figure the §6.5 memory evaluation reports for caching state.
func (s *Store) MemoryBytes() int {
	total := 0
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		for k, e := range st.data {
			total += len(k) + len(e.val)
		}
		st.mu.RUnlock()
	}
	return total
}

// ExportNamespace returns the stored bytes and metadata of every key in
// ns (keys without the prefix), for per-namespace persistence: each exact
// cache snapshots exactly the slice of the store it owns. Unexpired
// leases are live coordination state and are skipped.
func (s *Store) ExportNamespace(ns string) map[string]store.Exported {
	prefix := ns + ":"
	out := make(map[string]store.Exported)
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.RLock()
		for k, e := range st.data {
			if !strings.HasPrefix(k, prefix) || e.deadline > 0 {
				continue
			}
			out[strings.TrimPrefix(k, prefix)] = store.Exported{
				Val:    append([]byte(nil), e.val...),
				Weight: e.weight,
				Pinned: e.pinned,
			}
		}
		st.mu.RUnlock()
	}
	return out
}

// ImportNamespace replaces the contents of ns with previously-exported
// entries, leaving every other namespace untouched. Weights and pins
// round-trip so a later migration into a memory-bounded backend keeps
// its eviction priority.
func (s *Store) ImportNamespace(ns string, data map[string]store.Exported) {
	prefix := ns + ":"
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		for k := range st.data {
			if strings.HasPrefix(k, prefix) {
				delete(st.data, k)
			}
		}
		st.mu.Unlock()
	}
	for k, v := range data {
		full := prefix + k
		st := s.stripeFor(full)
		st.mu.Lock()
		st.data[full] = &entry{
			val:    append([]byte(nil), v.Val...),
			weight: v.Weight,
			pinned: v.Pinned,
		}
		st.mu.Unlock()
	}
	s.version.Add(1)
}

// Stats returns the store's operation counters and memory accounting.
// The striped map never evicts and has no caps, so those fields are zero.
func (s *Store) Stats() store.Stats {
	return store.Stats{
		Backend:      "striped-map",
		Hits:         s.hits.Load(),
		Misses:       s.misses.Load(),
		Sets:         s.sets.Load(),
		Deletes:      s.deletes.Load(),
		DecodeErrors: s.decodeErrors.Load(),
		Entries:      s.Len(),
		Bytes:        s.MemoryBytes(),
	}
}
