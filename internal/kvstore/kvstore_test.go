package kvstore

import (
	"fmt"
	"testing"
)

type payload struct {
	X int
	S string
	V []float64
}

func TestSetGetRoundTrip(t *testing.T) {
	s := New()
	in := payload{X: 7, S: "hi", V: []float64{1, 2.5}}
	if err := s.Set("ns", "k", in); err != nil {
		t.Fatal(err)
	}
	var out payload
	ok, err := s.Get("ns", "k", &out)
	if err != nil || !ok {
		t.Fatalf("Get = %v, %v", ok, err)
	}
	if out.X != in.X || out.S != in.S || len(out.V) != 2 || out.V[1] != 2.5 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestGetMissing(t *testing.T) {
	s := New()
	var out payload
	ok, err := s.Get("ns", "absent", &out)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("missing key reported present")
	}
}

func TestNamespaceIsolation(t *testing.T) {
	s := New()
	_ = s.Set("a", "k", 1)
	_ = s.Set("b", "k", 2)
	var v int
	if ok, _ := s.Get("a", "k", &v); !ok || v != 1 {
		t.Fatalf("ns a: %v", v)
	}
	if ok, _ := s.Get("b", "k", &v); !ok || v != 2 {
		t.Fatalf("ns b: %v", v)
	}
	keys := s.Keys("a")
	if len(keys) != 1 || keys[0] != "k" {
		t.Fatalf("Keys(a) = %v", keys)
	}
}

func TestDelete(t *testing.T) {
	s := New()
	_ = s.Set("ns", "k", 1)
	if !s.Delete("ns", "k") {
		t.Fatal("Delete existing returned false")
	}
	if s.Delete("ns", "k") {
		t.Fatal("Delete missing returned true")
	}
	var v int
	if ok, _ := s.Get("ns", "k", &v); ok {
		t.Fatal("deleted key still present")
	}
}

func TestKeysSortedAndPrefixSafe(t *testing.T) {
	s := New()
	_ = s.Set("ns", "b", 1)
	_ = s.Set("ns", "a", 1)
	_ = s.Set("nsx", "c", 1) // different namespace sharing a prefix
	keys := s.Keys("ns")
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestVersionAndLen(t *testing.T) {
	s := New()
	if s.Version() != 0 || s.Len() != 0 {
		t.Fatal("fresh store not empty")
	}
	_ = s.Set("ns", "k", 1)
	if s.Version() != 1 || s.Len() != 1 {
		t.Fatalf("after set: version=%d len=%d", s.Version(), s.Len())
	}
	s.Delete("ns", "k")
	if s.Version() != 2 || s.Len() != 0 {
		t.Fatalf("after delete: version=%d len=%d", s.Version(), s.Len())
	}
}

func TestMemoryBytes(t *testing.T) {
	s := New()
	if s.MemoryBytes() != 0 {
		t.Fatal("empty store has memory")
	}
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = 0.1 + float64(i) // non-zero so gob can't elide them
	}
	_ = s.Set("ns", "k", payload{V: vals})
	if s.MemoryBytes() < 800 {
		t.Fatalf("MemoryBytes = %d, want ≥ 800", s.MemoryBytes())
	}
}

func TestExportImportNamespace(t *testing.T) {
	s := New()
	_ = s.Set("ns", "k1", payload{X: 1})
	_ = s.Set("ns", "k2", payload{X: 2})
	_ = s.Set("other", "x", payload{X: 9})
	data := s.ExportNamespace("ns")
	if len(data) != 2 {
		t.Fatalf("exported %d keys, want 2", len(data))
	}

	r := New()
	_ = r.Set("ns", "stale", payload{X: 7})
	_ = r.Set("other", "keep", payload{X: 8})
	r.ImportNamespace("ns", data)
	var out payload
	if ok, _ := r.Get("ns", "k2", &out); !ok || out.X != 2 {
		t.Fatalf("imported k2 = %+v ok=%v", out, ok)
	}
	if ok, _ := r.Get("ns", "stale", &out); ok {
		t.Fatal("import kept pre-existing namespace keys")
	}
	if ok, _ := r.Get("other", "keep", &out); !ok || out.X != 8 {
		t.Fatal("import touched a foreign namespace")
	}
}

// TestDecodeTypeMismatch pins the poison-entry contract: bytes that fail
// to decode are a miss plus an error, the corrupt entry is deleted (so
// the key is re-fillable instead of wedged), and the decode-error counter
// records the event.
func TestDecodeTypeMismatch(t *testing.T) {
	s := New()
	_ = s.Set("ns", "k", "a string")
	var out int
	ok, err := s.Get("ns", "k", &out)
	if ok || err == nil {
		t.Fatalf("type mismatch: ok=%v err=%v", ok, err)
	}
	var str string
	if found, _ := s.Get("ns", "k", &str); found {
		t.Fatal("poisoned entry left resident")
	}
	if got := s.Stats().DecodeErrors; got != 1 {
		t.Fatalf("DecodeErrors = %d, want 1", got)
	}
	if err := s.Set("ns", "k", 7); err != nil {
		t.Fatal(err)
	}
	if found, err := s.Get("ns", "k", &out); err != nil || !found || out != 7 {
		t.Fatalf("key not re-fillable after poison delete: %v %v %d", found, err, out)
	}
}

func TestCompareDelete(t *testing.T) {
	s := New()
	if err := s.Set("ns", "k", 42); err != nil {
		t.Fatal(err)
	}
	if s.CompareDelete("ns", "k", 41) {
		t.Fatal("deleted on mismatched value")
	}
	var got int
	if ok, _ := s.Get("ns", "k", &got); !ok || got != 42 {
		t.Fatalf("entry lost after mismatched CompareDelete: %v %d", ok, got)
	}
	if !s.CompareDelete("ns", "k", 42) {
		t.Fatal("matched CompareDelete refused")
	}
	if ok, _ := s.Get("ns", "k", &got); ok {
		t.Fatal("entry survived matched CompareDelete")
	}
	if s.CompareDelete("ns", "missing", 1) {
		t.Fatal("deleted a missing key")
	}
}

func TestSetNX(t *testing.T) {
	s := New()
	stored, err := s.SetNX("ns", "k", 1)
	if err != nil || !stored {
		t.Fatalf("first SetNX = %v, %v", stored, err)
	}
	stored, err = s.SetNX("ns", "k", 2)
	if err != nil || stored {
		t.Fatalf("second SetNX = %v, %v", stored, err)
	}
	var out int
	if ok, _ := s.Get("ns", "k", &out); !ok || out != 1 {
		t.Fatalf("SetNX overwrote: %d", out)
	}
}

// TestLeaseExpiryAndRenewal pins the lease semantics: a live lease
// excludes rivals, CompareSwap renews by the original ttl, and an expired
// lease counts as absent everywhere (Get, CompareSwap, CompareDelete,
// SetNXLease takeover).
func TestLeaseExpiryAndRenewal(t *testing.T) {
	s := New()
	var now int64
	s.nowNanos = func() int64 { return now }

	if ok, err := s.SetNXLease("ns", "lease", "holder-1", 100); !ok || err != nil {
		t.Fatalf("SetNXLease = %v, %v", ok, err)
	}
	if ok, _ := s.SetNXLease("ns", "lease", "holder-2", 100); ok {
		t.Fatal("rival stole a live lease")
	}
	now = 80
	if ok, err := s.CompareSwap("ns", "lease", "holder-1", "holder-1"); !ok || err != nil {
		t.Fatalf("renewal CompareSwap = %v, %v", ok, err)
	}
	now = 150
	var holder string
	if ok, _ := s.Get("ns", "lease", &holder); !ok || holder != "holder-1" {
		t.Fatalf("renewed lease = %v %q", ok, holder)
	}
	now = 300
	if ok, _ := s.Get("ns", "lease", &holder); ok {
		t.Fatal("expired lease still readable")
	}
	if s.CompareDelete("ns", "lease", "holder-1") {
		t.Fatal("CompareDelete released an expired lease")
	}
	if ok, err := s.SetNXLease("ns", "lease", "holder-2", 100); !ok || err != nil {
		t.Fatalf("takeover after expiry = %v, %v", ok, err)
	}
	// A plain write over the lease makes it a plain entry again.
	if err := s.Set("ns", "lease", "plain"); err != nil {
		t.Fatal(err)
	}
	now = 10_000
	if ok, _ := s.Get("ns", "lease", &holder); !ok || holder != "plain" {
		t.Fatal("plain write inherited the old lease deadline")
	}
}

func TestStatsCounters(t *testing.T) {
	s := New()
	_ = s.Set("ns", "k", 1)
	var out int
	_, _ = s.Get("ns", "k", &out)      // hit
	_, _ = s.Get("ns", "absent", &out) // miss
	s.Delete("ns", "k")
	st := s.Stats()
	if st.Backend != "striped-map" {
		t.Fatalf("backend name %q", st.Backend)
	}
	if st.Hits != 1 || st.Misses != 1 || st.Sets != 1 || st.Deletes != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Evictions != 0 || st.CapBytes != 0 || st.CapEntries != 0 {
		t.Fatalf("unbounded store reports caps/evictions: %+v", st)
	}
}

// TestSetWeightedIgnoresWeight pins that the unbounded store treats
// SetWeighted as Set: nothing ever evicts.
func TestSetWeightedIgnoresWeight(t *testing.T) {
	s := New()
	for i := 0; i < 1000; i++ {
		if err := s.SetWeighted("ns", fmt.Sprintf("k%d", i), i, 0); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 1000 {
		t.Fatalf("Len = %d", s.Len())
	}
}
