// Recursive-descent parser for the turbo-sql grammar:
//
//	query    := SELECT COUNT ( * ) FROM ident [WHERE conj] [;]
//	conj     := pred {AND pred}
//	pred     := ident = value
//	          | ident IN ( value {, value} )
//	          | TIME BETWEEN number AND number
//	value    := number | string (level name)

package sqlparser

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/domain"
	"repro/internal/query"
)

// Statement is a parsed turbo-sql query.
type Statement struct {
	Table string
	Query *query.Query
}

// Parser parses statements against a fixed schema.
type Parser struct {
	dom *domain.Domain
	// TimeAttr is the reserved window column name; "time" by default.
	TimeAttr string
}

// New creates a parser over the given domain.
func New(dom *domain.Domain) *Parser {
	return &Parser{dom: dom, TimeAttr: "time"}
}

// Parse parses one statement.
func (p *Parser) Parse(src string) (*Statement, error) {
	tokens, err := lex(src)
	if err != nil {
		return nil, err
	}
	s := &state{tokens: tokens, dom: p.dom, timeAttr: p.TimeAttr}
	return s.parseQuery()
}

type state struct {
	tokens   []token
	i        int
	dom      *domain.Domain
	timeAttr string
}

func (s *state) peek() token { return s.tokens[s.i] }

func (s *state) next() token {
	t := s.tokens[s.i]
	if t.kind != tokEOF {
		s.i++
	}
	return t
}

func (s *state) expectKeyword(kw string) error {
	t := s.next()
	if !t.isKeyword(kw) {
		return fmt.Errorf("sqlparser: expected %s at %d, got %q", kw, t.pos, t.text)
	}
	return nil
}

func (s *state) expectPunct(p string) error {
	t := s.next()
	if t.kind != tokPunct || t.text != p {
		return fmt.Errorf("sqlparser: expected %q at %d, got %q", p, t.pos, t.text)
	}
	return nil
}

func (s *state) parseQuery() (*Statement, error) {
	if err := s.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	if err := s.expectKeyword("COUNT"); err != nil {
		return nil, fmt.Errorf("%w (turbo-sql supports COUNT(*) only; other aggregates fail over to the host engine)", err)
	}
	if err := s.expectPunct("("); err != nil {
		return nil, err
	}
	if err := s.expectPunct("*"); err != nil {
		return nil, err
	}
	if err := s.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := s.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	tbl := s.next()
	if tbl.kind != tokIdent {
		return nil, fmt.Errorf("sqlparser: expected table name at %d, got %q", tbl.pos, tbl.text)
	}

	b := query.NewBuilder(s.dom)
	if s.peek().isKeyword("WHERE") {
		s.next()
		if err := s.parseConjunction(b); err != nil {
			return nil, err
		}
	}
	if s.peek().kind == tokPunct && s.peek().text == ";" {
		s.next()
	}
	if t := s.peek(); t.kind != tokEOF {
		if t.isKeyword("OR") {
			return nil, fmt.Errorf("sqlparser: OR at %d: turbo-sql supports conjunctive predicates only", t.pos)
		}
		if t.isKeyword("GROUP") {
			return nil, fmt.Errorf("sqlparser: GROUP BY at %d: decompose into primitive queries first", t.pos)
		}
		return nil, fmt.Errorf("sqlparser: trailing input at %d: %q", t.pos, t.text)
	}
	q, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Statement{Table: tbl.text, Query: q}, nil
}

func (s *state) parseConjunction(b *query.Builder) error {
	for {
		if err := s.parsePredicate(b); err != nil {
			return err
		}
		if !s.peek().isKeyword("AND") {
			return nil
		}
		s.next()
	}
}

func (s *state) parsePredicate(b *query.Builder) error {
	col := s.next()
	if col.kind != tokIdent {
		return fmt.Errorf("sqlparser: expected column at %d, got %q", col.pos, col.text)
	}
	if strings.EqualFold(col.text, s.timeAttr) {
		return s.parseTimeWindow(b)
	}
	attr := s.dom.AttrIndex(col.text)
	if attr < 0 {
		return fmt.Errorf("sqlparser: unknown column %q at %d", col.text, col.pos)
	}
	t := s.next()
	switch {
	case t.kind == tokPunct && t.text == "=":
		v, err := s.parseValue(attr)
		if err != nil {
			return err
		}
		b.Restrict(attr, v)
		return nil
	case t.isKeyword("IN"):
		if err := s.expectPunct("("); err != nil {
			return err
		}
		var vals []int
		for {
			v, err := s.parseValue(attr)
			if err != nil {
				return err
			}
			vals = append(vals, v)
			n := s.next()
			if n.kind == tokPunct && n.text == "," {
				continue
			}
			if n.kind == tokPunct && n.text == ")" {
				break
			}
			return fmt.Errorf("sqlparser: expected , or ) at %d, got %q", n.pos, n.text)
		}
		b.Restrict(attr, vals...)
		return nil
	default:
		return fmt.Errorf("sqlparser: expected = or IN after %q at %d (ranges and inequalities are not linear predicates over categorical attributes)", col.text, t.pos)
	}
}

func (s *state) parseTimeWindow(b *query.Builder) error {
	if err := s.expectKeyword("BETWEEN"); err != nil {
		return err
	}
	lo, err := s.parseInt()
	if err != nil {
		return err
	}
	if err := s.expectKeyword("AND"); err != nil {
		return err
	}
	hi, err := s.parseInt()
	if err != nil {
		return err
	}
	b.Window(lo, hi)
	return nil
}

func (s *state) parseInt() (int, error) {
	t := s.next()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("sqlparser: expected number at %d, got %q", t.pos, t.text)
	}
	v, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, fmt.Errorf("sqlparser: bad integer %q at %d", t.text, t.pos)
	}
	return v, nil
}

// parseValue accepts a numeric value or a quoted/bare level name for the
// attribute.
func (s *state) parseValue(attr int) (int, error) {
	t := s.next()
	switch t.kind {
	case tokNumber:
		v, err := strconv.Atoi(t.text)
		if err != nil {
			return 0, fmt.Errorf("sqlparser: bad value %q at %d", t.text, t.pos)
		}
		if v < 0 || v >= s.dom.Card(attr) {
			return 0, fmt.Errorf("sqlparser: value %d out of range for %q (card %d)",
				v, s.dom.Attr(attr).Name, s.dom.Card(attr))
		}
		return v, nil
	case tokString, tokIdent:
		v := s.dom.LevelValue(attr, t.text)
		if v < 0 {
			return 0, fmt.Errorf("sqlparser: unknown level %q for column %q at %d",
				t.text, s.dom.Attr(attr).Name, t.pos)
		}
		return v, nil
	default:
		return 0, fmt.Errorf("sqlparser: expected value at %d, got %q", t.pos, t.text)
	}
}
