package sqlparser

import (
	"strings"
	"testing"

	"repro/internal/domain"
)

func covid() *domain.Domain {
	return domain.MustNew(
		domain.Attribute{Name: "positive", Card: 2, Levels: []string{"negative", "positive"}},
		domain.Attribute{Name: "age", Card: 4, Levels: []string{"1-17", "18-49", "50-64", "65+"}},
		domain.Attribute{Name: "gender", Card: 2},
		domain.Attribute{Name: "ethnicity", Card: 8},
	)
}

func mustParse(t *testing.T, src string) *Statement {
	t.Helper()
	st, err := New(covid()).Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return st
}

func TestBasicCount(t *testing.T) {
	st := mustParse(t, "SELECT COUNT(*) FROM covid")
	if st.Table != "covid" {
		t.Fatalf("table = %q", st.Table)
	}
	if st.Query.SupportSize() != 128 {
		t.Fatal("unconstrained query should select everything")
	}
}

func TestEqualityPredicate(t *testing.T) {
	st := mustParse(t, "SELECT COUNT(*) FROM covid WHERE positive = 1")
	if got := st.Query.Allowed(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Allowed(positive) = %v", got)
	}
}

func TestLevelNames(t *testing.T) {
	st := mustParse(t, "SELECT COUNT(*) FROM covid WHERE positive = 'positive' AND age = '65+'")
	if got := st.Query.Allowed(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Allowed(positive) = %v", got)
	}
	if got := st.Query.Allowed(1); len(got) != 1 || got[0] != 3 {
		t.Fatalf("Allowed(age) = %v", got)
	}
	// Bare identifier levels work too.
	st = mustParse(t, "SELECT COUNT(*) FROM covid WHERE positive = negative")
	if got := st.Query.Allowed(0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("bare level = %v", got)
	}
}

func TestInPredicate(t *testing.T) {
	st := mustParse(t, "SELECT COUNT(*) FROM covid WHERE age IN (0, 2, 3)")
	if got := st.Query.Allowed(1); len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("Allowed(age) = %v", got)
	}
}

func TestConjunction(t *testing.T) {
	st := mustParse(t, `SELECT COUNT(*) FROM covid
		WHERE positive = 1 AND age IN (0,1) AND ethnicity = 5`)
	q := st.Query
	if q.SupportSize() != 1*2*2*1 {
		t.Fatalf("SupportSize = %d", q.SupportSize())
	}
}

func TestTimeWindow(t *testing.T) {
	st := mustParse(t, "SELECT COUNT(*) FROM covid WHERE positive = 1 AND time BETWEEN 2 AND 5")
	s, e, ok := st.Query.Window()
	if !ok || s != 2 || e != 5 {
		t.Fatalf("window = %d,%d,%v", s, e, ok)
	}
	// TIME is case-insensitive and can come first.
	st = mustParse(t, "SELECT COUNT(*) FROM covid WHERE TIME BETWEEN 0 AND 0 AND positive = 0")
	if _, _, ok := st.Query.Window(); !ok {
		t.Fatal("uppercase TIME not recognized")
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	mustParse(t, "select count(*) from covid where positive = 1 and age in (1,2)")
}

func TestTrailingSemicolon(t *testing.T) {
	mustParse(t, "SELECT COUNT(*) FROM covid;")
	mustParse(t, "SELECT COUNT(*) FROM covid WHERE positive = 1;")
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{"SELECT AVG(*) FROM covid", "COUNT(*) only"},
		{"SELECT COUNT(*) covid", "FROM"},
		{"SELECT COUNT(*) FROM covid WHERE bogus = 1", "unknown column"},
		{"SELECT COUNT(*) FROM covid WHERE positive = 9", "out of range"},
		{"SELECT COUNT(*) FROM covid WHERE positive = 'maybe'", "unknown level"},
		{"SELECT COUNT(*) FROM covid WHERE positive = 1 OR age = 0", "conjunctive"},
		{"SELECT COUNT(*) FROM covid GROUP BY age", "GROUP BY"},
		{"SELECT COUNT(*) FROM covid WHERE age IN ()", "expected value"},
		{"SELECT COUNT(*) FROM covid WHERE age IN (1 2)", "expected , or )"},
		{"SELECT COUNT(*) FROM covid WHERE time BETWEEN 5 AND 2", "window"},
		{"SELECT COUNT(*) FROM covid WHERE time BETWEEN x AND 2", "expected number"},
		{"SELECT COUNT(*) FROM covid WHERE age > 2", "unexpected character '>'"},
		{"SELECT COUNT(*) FROM covid WHERE age BETWEEN 1 AND 2", "expected = or IN"},
		{"SELECT COUNT(*) FROM covid WHERE", "expected column"},
		{"SELECT COUNT(*) FROM covid trailing", "trailing"},
		{"COUNT(*) FROM covid", "SELECT"},
		{"SELECT COUNT * FROM covid", `"("`},
		{"SELECT COUNT(x) FROM covid", `"*"`},
		{"SELECT COUNT(*) FROM covid WHERE positive = 1 AND positive = 0", "contradictory"},
	}
	p := New(covid())
	for _, c := range cases {
		_, err := p.Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q) error %q missing %q", c.src, err, c.wantSub)
		}
	}
}

func TestLexErrors(t *testing.T) {
	p := New(covid())
	if _, err := p.Parse("SELECT COUNT(*) FROM covid WHERE positive = 'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := p.Parse("SELECT COUNT(*) FROM covid WHERE positive = 1 @"); err == nil {
		t.Error("bad character accepted")
	}
}

func TestRepeatedAttributeIntersects(t *testing.T) {
	st := mustParse(t, "SELECT COUNT(*) FROM covid WHERE age IN (0,1,2) AND age IN (1,2,3)")
	if got := st.Query.Allowed(1); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("intersection = %v", got)
	}
}

func TestCustomTimeAttr(t *testing.T) {
	p := New(covid())
	p.TimeAttr = "week"
	st, err := p.Parse("SELECT COUNT(*) FROM covid WHERE week BETWEEN 1 AND 3")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := st.Query.Window(); !ok {
		t.Fatal("custom time attribute not honored")
	}
}

func TestDoubleQuotedStrings(t *testing.T) {
	mustParse(t, `SELECT COUNT(*) FROM covid WHERE age = "50-64"`)
}

func TestNegativeWindowRejected(t *testing.T) {
	if _, err := New(covid()).Parse("SELECT COUNT(*) FROM covid WHERE time BETWEEN -1 AND 2"); err == nil {
		t.Fatal("negative window accepted")
	}
}
