// GROUP BY support: the paper's CitiBike pool is built by decomposing
// analyst GROUP BY queries into one primitive counting query per group
// (§6.1). This file implements that decomposition at the parser level, so
// analysts can issue the original statement and receive per-group results
// each answered through Turbo.

package sqlparser

import (
	"fmt"
	"strings"

	"repro/internal/domain"
	"repro/internal/query"
)

// GroupedStatement is a parsed GROUP BY query: a base predicate plus the
// grouping attributes, decomposed into one primitive query per group.
type GroupedStatement struct {
	Table   string
	GroupBy []int // attribute indices, in declaration order
	// Groups lists every value combination with its primitive query,
	// enumerated in row-major order over the grouped attributes.
	Groups []Group
}

// Group is one GROUP BY cell.
type Group struct {
	Values []int // one value per GroupBy attribute
	Query  *query.Query
}

// ParseGrouped parses a statement that may carry a trailing
// `GROUP BY col {, col}` clause. Statements without GROUP BY return a
// single group with the base query.
func (p *Parser) ParseGrouped(src string) (*GroupedStatement, error) {
	base, groupCols, err := splitGroupBy(src)
	if err != nil {
		return nil, err
	}
	st, err := p.Parse(base)
	if err != nil {
		return nil, err
	}
	gs := &GroupedStatement{Table: st.Table}
	if len(groupCols) == 0 {
		gs.Groups = []Group{{Query: st.Query}}
		return gs, nil
	}
	for _, col := range groupCols {
		attr := p.dom.AttrIndex(col)
		if attr < 0 {
			return nil, fmt.Errorf("sqlparser: unknown GROUP BY column %q", col)
		}
		if st.Query.Allowed(attr) != nil {
			return nil, fmt.Errorf("sqlparser: GROUP BY column %q also constrained in WHERE", col)
		}
		gs.GroupBy = append(gs.GroupBy, attr)
	}
	gs.Groups = enumerate(p.dom, st.Query, gs.GroupBy)
	return gs, nil
}

// splitGroupBy slices a trailing GROUP BY clause off the statement. The
// case-insensitive search must index the original string directly:
// strings.ToUpper can change byte length for non-ASCII input, so an index
// computed on the upper-cased copy may not be valid in src (found by
// FuzzParseGrouped).
func splitGroupBy(src string) (base string, cols []string, err error) {
	idx := lastIndexFold(src, "GROUP BY")
	if idx < 0 {
		return src, nil, nil
	}
	clause := strings.TrimSpace(src[idx+len("GROUP BY"):])
	clause = strings.TrimSuffix(clause, ";")
	if clause == "" {
		return "", nil, fmt.Errorf("sqlparser: empty GROUP BY clause")
	}
	for _, c := range strings.Split(clause, ",") {
		c = strings.TrimSpace(c)
		if c == "" {
			return "", nil, fmt.Errorf("sqlparser: empty GROUP BY column")
		}
		cols = append(cols, c)
	}
	return src[:idx], cols, nil
}

// lastIndexFold finds the last case-insensitive occurrence of an ASCII
// pattern, returning a byte offset valid in s.
func lastIndexFold(s, pat string) int {
	for i := len(s) - len(pat); i >= 0; i-- {
		if strings.EqualFold(s[i:i+len(pat)], pat) {
			return i
		}
	}
	return -1
}

// enumerate produces the primitive query for every group cell by
// restricting the base query to each value combination.
func enumerate(dom *domain.Domain, base *query.Query, groupBy []int) []Group {
	var out []Group
	assign := make([]int, len(groupBy))
	var rec func(i int)
	rec = func(i int) {
		if i == len(groupBy) {
			b := query.NewBuilder(dom)
			for a := 0; a < dom.NumAttrs(); a++ {
				if vals := base.Allowed(a); vals != nil {
					b.Restrict(a, vals...)
				}
			}
			for j, attr := range groupBy {
				b.Restrict(attr, assign[j])
			}
			if s, e, ok := base.Window(); ok {
				b.Window(s, e)
			}
			q, err := b.Build()
			if err != nil {
				// Unreachable: group restrictions never contradict an
				// unconstrained attribute (checked in ParseGrouped).
				panic(fmt.Sprintf("sqlparser: group enumeration: %v", err))
			}
			out = append(out, Group{Values: append([]int(nil), assign...), Query: q})
			return
		}
		for v := 0; v < dom.Card(groupBy[i]); v++ {
			assign[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return out
}
