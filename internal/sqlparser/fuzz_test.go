package sqlparser

import (
	"strings"
	"testing"
)

// FuzzParse checks that no input can panic the parser or produce a query
// violating its invariants; errors are fine, crashes are not.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT COUNT(*) FROM covid",
		"SELECT COUNT(*) FROM covid WHERE positive = 1",
		"SELECT COUNT(*) FROM covid WHERE age IN (0, 1, 2) AND gender = 0",
		"SELECT COUNT(*) FROM covid WHERE time BETWEEN 2 AND 5",
		"select count(*) from covid where positive = 'positive';",
		"SELECT COUNT(*) FROM covid WHERE ethnicity IN (7)",
		"SELECT COUNT(*) FROM covid WHERE positive = 1 AND positive = 1",
		"",
		"garbage ' unterminated",
		"SELECT COUNT(*) FROM covid WHERE age = -1",
		"SELECT COUNT(*) FROM covid WHERE \x00 = 1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	p := New(covid())
	f.Fuzz(func(t *testing.T, src string) {
		st, err := p.Parse(src)
		if err != nil {
			return
		}
		// Parsed queries must satisfy their invariants.
		q := st.Query
		if q.SupportSize() < 1 || q.SupportSize() > 128 {
			t.Fatalf("support %d out of range for %q", q.SupportSize(), src)
		}
		if s, e, ok := q.Window(); ok && (s < 0 || s > e) {
			t.Fatalf("bad window [%d,%d] for %q", s, e, src)
		}
		if q.Key() == "" {
			t.Fatalf("empty key for %q", src)
		}
	})
}

// FuzzParseGrouped extends the check to GROUP BY decomposition: groups
// must partition the base query's support.
func FuzzParseGrouped(f *testing.F) {
	seeds := []string{
		"SELECT COUNT(*) FROM covid GROUP BY age",
		"SELECT COUNT(*) FROM covid WHERE positive = 1 GROUP BY age, gender",
		"SELECT COUNT(*) FROM covid GROUP BY",
		"SELECT COUNT(*) FROM covid WHERE age = 1 GROUP BY age",
		"SELECT COUNT(*) FROM covid group by ethnicity;",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	p := New(covid())
	f.Fuzz(func(t *testing.T, src string) {
		gs, err := p.ParseGrouped(src)
		if err != nil {
			return
		}
		if len(gs.Groups) == 0 {
			t.Fatalf("no groups for %q", src)
		}
		if len(gs.GroupBy) == 0 {
			return // plain statement
		}
		// Group supports are disjoint and cover the base support: their
		// sizes sum to the support of the statement without the GROUP BY
		// restrictions.
		baseSrc := src[:strings.LastIndex(strings.ToUpper(src), "GROUP BY")]
		base, err := p.Parse(baseSrc)
		if err != nil {
			t.Fatalf("base re-parse of %q: %v", baseSrc, err)
		}
		total := 0
		for _, g := range gs.Groups {
			total += g.Query.SupportSize()
		}
		if total != base.Query.SupportSize() {
			t.Fatalf("groups cover %d bins, base %d, for %q", total, base.Query.SupportSize(), src)
		}
	})
}
