package sqlparser

import (
	"testing"
)

func TestParseGroupedSingleColumn(t *testing.T) {
	p := New(covid())
	gs, err := p.ParseGrouped("SELECT COUNT(*) FROM covid WHERE positive = 1 GROUP BY age")
	if err != nil {
		t.Fatal(err)
	}
	if len(gs.Groups) != 4 {
		t.Fatalf("groups = %d, want 4", len(gs.Groups))
	}
	for i, g := range gs.Groups {
		if len(g.Values) != 1 || g.Values[0] != i {
			t.Fatalf("group %d values = %v", i, g.Values)
		}
		if got := g.Query.Allowed(1); len(got) != 1 || got[0] != i {
			t.Fatalf("group %d age = %v", i, got)
		}
		if got := g.Query.Allowed(0); len(got) != 1 || got[0] != 1 {
			t.Fatalf("group %d lost WHERE filter: %v", i, got)
		}
	}
}

func TestParseGroupedMultiColumn(t *testing.T) {
	p := New(covid())
	gs, err := p.ParseGrouped("SELECT COUNT(*) FROM covid GROUP BY positive, gender")
	if err != nil {
		t.Fatal(err)
	}
	if len(gs.Groups) != 4 { // 2 × 2
		t.Fatalf("groups = %d", len(gs.Groups))
	}
	// Row-major enumeration.
	want := [][]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	for i, g := range gs.Groups {
		if g.Values[0] != want[i][0] || g.Values[1] != want[i][1] {
			t.Fatalf("group %d = %v, want %v", i, g.Values, want[i])
		}
	}
	// Support sets partition the domain.
	total := 0
	for _, g := range gs.Groups {
		total += g.Query.SupportSize()
	}
	if total != covid().Size() {
		t.Fatalf("groups cover %d bins, want %d", total, covid().Size())
	}
}

func TestParseGroupedKeepsWindow(t *testing.T) {
	p := New(covid())
	gs, err := p.ParseGrouped(
		"SELECT COUNT(*) FROM covid WHERE time BETWEEN 1 AND 3 GROUP BY age")
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range gs.Groups {
		s, e, ok := g.Query.Window()
		if !ok || s != 1 || e != 3 {
			t.Fatalf("group lost window: %d,%d,%v", s, e, ok)
		}
	}
}

func TestParseGroupedWithoutClause(t *testing.T) {
	p := New(covid())
	gs, err := p.ParseGrouped("SELECT COUNT(*) FROM covid WHERE positive = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(gs.Groups) != 1 || gs.GroupBy != nil {
		t.Fatalf("ungrouped statement = %+v", gs)
	}
}

func TestParseGroupedErrors(t *testing.T) {
	p := New(covid())
	cases := []string{
		"SELECT COUNT(*) FROM covid GROUP BY bogus",
		"SELECT COUNT(*) FROM covid WHERE age = 1 GROUP BY age", // constrained
		"SELECT COUNT(*) FROM covid GROUP BY",
		"SELECT COUNT(*) FROM covid GROUP BY age,,gender",
		"SELECT AVG(*) FROM covid GROUP BY age",
	}
	for _, src := range cases {
		if _, err := p.ParseGrouped(src); err == nil {
			t.Errorf("ParseGrouped(%q) succeeded", src)
		}
	}
}

func TestParseGroupedTrailingSemicolon(t *testing.T) {
	p := New(covid())
	gs, err := p.ParseGrouped("SELECT COUNT(*) FROM covid GROUP BY gender;")
	if err != nil {
		t.Fatal(err)
	}
	if len(gs.Groups) != 2 {
		t.Fatalf("groups = %d", len(gs.Groups))
	}
}
