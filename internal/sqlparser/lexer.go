// Package sqlparser parses the linear-SQL subset that turbo-sql accepts
// (§5): counting queries with conjunctive predicates over categorical
// attributes and an optional time window, e.g.
//
//	SELECT COUNT(*) FROM covid WHERE positive = 1 AND age IN (0, 1)
//	    AND time BETWEEN 2 AND 5
//
// The parser produces a query.Query (plus window) ready for a Turbo
// session. Aggregates other than COUNT(*), disjunctions, joins and nested
// queries are rejected with descriptive errors — those queries fail over
// to the host DP engine in a real integration (the "fail-to-Tumult"
// approach of §5).
package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // ( ) , = *
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer tokenizes a SQL string. SQL keywords are case-insensitive
// identifiers; we canonicalize to upper case during matching but preserve
// original text for error messages.
type lexer struct {
	src    string
	pos    int
	tokens []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		switch {
		case unicode.IsSpace(c):
			l.pos++
		case c == '(' || c == ')' || c == ',' || c == '=' || c == '*' || c == ';':
			l.tokens = append(l.tokens, token{tokPunct, string(c), l.pos})
			l.pos++
		case c == '\'' || c == '"':
			if err := l.lexString(byte(c)); err != nil {
				return nil, err
			}
		case unicode.IsDigit(c) || c == '-':
			l.lexNumber()
		case unicode.IsLetter(c) || c == '_':
			l.lexIdent()
		default:
			return nil, fmt.Errorf("sqlparser: unexpected character %q at %d", c, l.pos)
		}
	}
	l.tokens = append(l.tokens, token{tokEOF, "", l.pos})
	return l.tokens, nil
}

func (l *lexer) lexString(quote byte) error {
	start := l.pos
	l.pos++ // opening quote
	for l.pos < len(l.src) && l.src[l.pos] != quote {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return fmt.Errorf("sqlparser: unterminated string starting at %d", start)
	}
	l.tokens = append(l.tokens, token{tokString, l.src[start+1 : l.pos], start})
	l.pos++ // closing quote
	return nil
}

func (l *lexer) lexNumber() {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	for l.pos < len(l.src) && (unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '.') {
		l.pos++
	}
	l.tokens = append(l.tokens, token{tokNumber, l.src[start:l.pos], start})
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		if !unicode.IsLetter(c) && !unicode.IsDigit(c) && c != '_' && c != '-' {
			break
		}
		l.pos++
	}
	l.tokens = append(l.tokens, token{tokIdent, l.src[start:l.pos], start})
}

// isKeyword matches an identifier token case-insensitively.
func (t token) isKeyword(kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
