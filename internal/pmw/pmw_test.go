package pmw

import (
	"errors"
	"math"
	"testing"

	"repro/internal/accountant"
	"repro/internal/dataset"
	"repro/internal/domain"
	"repro/internal/heuristic"
	"repro/internal/histogram"
	"repro/internal/noise"
	"repro/internal/query"
)

// fixture builds a single-partition dataset with a skewed distribution and
// a PMW over it.
type fixture struct {
	dom   *domain.Domain
	ds    *dataset.Dataset
	exec  *dataset.Executor
	filt  *accountant.Filter
	pmw   *PMW
	eps   float64
	alpha float64
}

func newFixture(t *testing.T, cfgMut func(*Config), global float64) *fixture {
	t.Helper()
	dom := domain.MustNew(
		domain.Attribute{Name: "p", Card: 2},
		domain.Attribute{Name: "a", Card: 4},
	)
	ds := dataset.New(dom, 1)
	// Skewed ground truth: bin (1,0) heavy.
	counts := []int{100, 200, 300, 400, 4000, 600, 700, 1700}
	for bin, c := range counts {
		if err := ds.AddCount(0, bin, c); err != nil {
			t.Fatal(err)
		}
	}
	rng := noise.NewRng(17)
	exec := dataset.NewExecutor(ds, rng.Fork())
	filt := accountant.NewFilter(global)
	cfg := Config{
		Alpha: 0.05, Beta: 0.001,
		N: ds.NRowsAll(), DomainSize: dom.Size(),
		Tau: 0.25, LR: Constant(0.2),
		Heuristic: heuristic.NewAdaptivePerBin(2, 1),
	}
	if cfgMut != nil {
		cfgMut(&cfg)
	}
	eps := cfg.Epsilon
	if eps <= 0 {
		eps = noise.EpsilonForAccuracy(cfg.Alpha, cfg.Beta, cfg.N)
	}
	p, err := New(cfg,
		RangeExecutor{Exec: exec, Start: 0, End: 0},
		PurePayer{Acct: filt, Eps: eps},
		rng.Fork())
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{dom: dom, ds: ds, exec: exec, filt: filt, pmw: p, eps: eps, alpha: cfg.Alpha}
}

func TestConfigValidation(t *testing.T) {
	good := Config{Alpha: 0.05, Beta: 0.001, N: 100, DomainSize: 8, Tau: 0.25}
	bads := []func(c *Config){
		func(c *Config) { c.Alpha = 0 },
		func(c *Config) { c.Alpha = 1 },
		func(c *Config) { c.Beta = 0 },
		func(c *Config) { c.Beta = 1 },
		func(c *Config) { c.N = 0 },
		func(c *Config) { c.DomainSize = 0 },
		func(c *Config) { c.Tau = 0 },
		func(c *Config) { c.Tau = 0.6 },
	}
	dom := domain.MustNew(domain.Attribute{Name: "x", Card: 8})
	ds := dataset.New(dom, 1)
	_ = ds.AddCount(0, 0, 100)
	exec := dataset.NewExecutor(ds, noise.NewRng(1))
	payer := PurePayer{Acct: accountant.NewFilter(1), Eps: 0.1}
	for i, mut := range bads {
		c := good
		mut(&c)
		if _, err := New(c, RangeExecutor{Exec: exec, Start: 0, End: 0}, payer, noise.NewRng(1)); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(good, nil, payer, noise.NewRng(1)); err == nil {
		t.Error("nil executor accepted")
	}
	if _, err := New(good, RangeExecutor{Exec: exec, Start: 0, End: 0}, nil, noise.NewRng(1)); err == nil {
		t.Error("nil payer accepted")
	}
}

func TestDefaultsApplied(t *testing.T) {
	f := newFixture(t, func(c *Config) { c.LR = nil; c.Heuristic = nil; c.Epsilon = 0 }, 1000)
	if f.pmw.Epsilon() != noise.EpsilonForAccuracy(0.05, 0.001, f.ds.NRowsAll()) {
		t.Fatal("default epsilon not calibrated")
	}
	if f.pmw.Heuristic() == nil {
		t.Fatal("no default heuristic")
	}
}

func TestBypassPathPaysEpsilon(t *testing.T) {
	f := newFixture(t, nil, 1000)
	q := query.MustNew(f.dom, map[int][]int{0: {1}})
	res, err := f.pmw.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Path != PathR3 {
		t.Fatalf("cold query path = %v, want R3", res.Path)
	}
	if math.Abs(res.Paid-f.eps) > 1e-12 {
		t.Fatalf("R3 paid %g, want ε = %g", res.Paid, f.eps)
	}
	if math.Abs(f.filt.Spent()-f.eps) > 1e-12 {
		t.Fatalf("accountant spent %g, want %g", f.filt.Spent(), f.eps)
	}
	st := f.pmw.Stats()
	if st.R3 != 1 || st.Queries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBypassResultAccuracy(t *testing.T) {
	f := newFixture(t, nil, 1000)
	q := query.MustNew(f.dom, map[int][]int{0: {1}})
	truth, _ := f.ds.TrueFraction(q, 0, 0)
	bad := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		res, err := f.pmw.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Path == PathR1 {
			continue // histogram answers tested separately
		}
		if math.Abs(res.Value-truth) > f.alpha {
			bad++
		}
	}
	if bad > 2 { // β = 0.001, so even 1 failure in 200 is rare
		t.Fatalf("%d/%d released answers outside α", bad, trials)
	}
}

func TestTrainingThenFreeQueries(t *testing.T) {
	f := newFixture(t, nil, 1000)
	// All 8 point queries, repeated: after training each bin past C0=2
	// the heuristic routes to the PMW branch and answers become free.
	var qs []*query.Query
	for p := 0; p < 2; p++ {
		for a := 0; a < 4; a++ {
			qs = append(qs, query.MustNew(f.dom, map[int][]int{0: {p}, 1: {a}}))
		}
	}
	for round := 0; round < 6; round++ {
		for _, q := range qs {
			if _, err := f.pmw.Run(q); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := f.pmw.Stats()
	if st.R1 == 0 {
		t.Fatalf("never reached the free path: %+v", st)
	}
	// Free answers must dominate by the end.
	spentBefore := f.filt.Spent()
	free := 0
	for _, q := range qs {
		res, err := f.pmw.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Path == PathR1 {
			free++
			if res.Paid != 0 {
				t.Fatal("R1 answer paid budget")
			}
		}
	}
	if free < len(qs)/2 {
		t.Fatalf("only %d/%d queries free after training", free, len(qs))
	}
	if f.filt.Spent() > spentBefore+4*f.eps*float64(len(qs))/2 {
		t.Fatal("trained PMW still burning budget heavily")
	}
}

func TestR2PathCost(t *testing.T) {
	// Force the PMW branch with an untrained histogram: the SV fails and
	// the query pays 4ε (plus the one-time lazy 3ε SV init).
	f := newFixture(t, func(c *Config) { c.Heuristic = heuristic.AlwaysReady{} }, 1000)
	q := query.MustNew(f.dom, map[int][]int{0: {1}, 1: {0}}) // truth far from uniform prior
	res, err := f.pmw.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Path != PathR2 {
		t.Fatalf("path = %v, want R2", res.Path)
	}
	if math.Abs(res.Paid-4*f.eps) > 1e-12 {
		t.Fatalf("R2 paid %g, want 4ε", res.Paid)
	}
	wantTotal := 3*f.eps + 4*f.eps // lazy SV init + miss
	if math.Abs(f.filt.Spent()-wantTotal) > 1e-12 {
		t.Fatalf("spent %g, want %g", f.filt.Spent(), wantTotal)
	}
	if !res.Updated {
		t.Fatal("R2 must update the histogram")
	}
}

func TestVanillaPMWBurnsBudgetDuringTraining(t *testing.T) {
	// Vanilla PMW (always-ready) pays 4ε per miss; PMW-Bypass pays ε.
	// Over an untrained phase the vanilla accountant must show roughly 4×
	// the consumption — the core observation of Fig. 3.
	van := newFixture(t, func(c *Config) { c.Heuristic = heuristic.AlwaysReady{} }, 1000)
	byp := newFixture(t, func(c *Config) { c.Heuristic = heuristic.NeverReady{} }, 1000)
	var qs []*query.Query
	for a := 0; a < 4; a++ {
		qs = append(qs, query.MustNew(van.dom, map[int][]int{0: {1}, 1: {a}}))
	}
	for i := 0; i < 3; i++ {
		for _, q := range qs {
			if _, err := van.pmw.Run(q); err != nil {
				t.Fatal(err)
			}
			if _, err := byp.pmw.Run(q); err != nil {
				t.Fatal(err)
			}
		}
	}
	if van.filt.Spent() < 2*byp.filt.Spent() {
		t.Fatalf("vanilla %g not ≫ bypass %g during training", van.filt.Spent(), byp.filt.Spent())
	}
}

func TestExternalUpdateMargin(t *testing.T) {
	f := newFixture(t, nil, 1000)
	q := query.MustNew(f.dom, map[int][]int{0: {1}})
	est := f.pmw.EstimateOnly(q)
	margin := 0.25 * 0.05 // τα
	if f.pmw.ExternalUpdate(q, est+margin/2) {
		t.Fatal("update applied inside the confidence margin")
	}
	if !f.pmw.ExternalUpdate(q, est+2*margin) {
		t.Fatal("update not applied above the margin")
	}
	after := f.pmw.EstimateOnly(q)
	if after <= est {
		t.Fatal("positive external update did not raise estimate")
	}
	if !f.pmw.ExternalUpdate(q, after-2*margin) {
		t.Fatal("downward update not applied")
	}
	if f.pmw.EstimateOnly(q) >= after {
		t.Fatal("negative external update did not lower estimate")
	}
}

func TestDirectedUpdate(t *testing.T) {
	f := newFixture(t, nil, 1000)
	q := query.MustNew(f.dom, map[int][]int{1: {2}})
	before := f.pmw.EstimateOnly(q)
	f.pmw.DirectedUpdate(q, true)
	if f.pmw.EstimateOnly(q) <= before {
		t.Fatal("positive directed update did not raise estimate")
	}
	f.pmw.DirectedUpdate(q, false)
	f.pmw.DirectedUpdate(q, false)
	if f.pmw.EstimateOnly(q) >= before {
		t.Fatal("negative directed updates did not lower estimate")
	}
	if f.pmw.Stats().Updates != 3 {
		t.Fatalf("updates = %d", f.pmw.Stats().Updates)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	f := newFixture(t, nil, 1e-9) // essentially no budget
	q := query.MustNew(f.dom, map[int][]int{0: {1}})
	_, err := f.pmw.Run(q)
	if !errors.Is(err, accountant.ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if !errors.Is(err, ErrNoBudget) {
		t.Fatal("ErrNoBudget alias broken")
	}
	if f.filt.Spent() != 0 {
		t.Fatal("failed query deducted budget")
	}
	if f.pmw.Stats().Queries != 0 {
		t.Fatal("failed query counted as answered")
	}
}

func TestWarmStart(t *testing.T) {
	f1 := newFixture(t, nil, 1000)
	q := query.MustNew(f1.dom, map[int][]int{0: {1}})
	for i := 0; i < 5; i++ {
		if _, err := f1.pmw.Run(q); err != nil {
			t.Fatal(err)
		}
	}
	trained := f1.pmw.Histogram().Clone()

	f2 := newFixture(t, nil, 1000)
	if err := f2.pmw.WarmStart(trained, heuristic.NewAdaptivePerBin(2, 1)); err != nil {
		t.Fatal(err)
	}
	if f2.pmw.EstimateOnly(q) != trained.Eval(q) {
		t.Fatal("warm-started histogram not installed")
	}
	// WarmStart after queries is rejected.
	if _, err := f2.pmw.Run(q); err != nil {
		t.Fatal(err)
	}
	if err := f2.pmw.WarmStart(trained, nil); err == nil {
		t.Fatal("WarmStart after queries accepted")
	}
	// Size and normalization checks.
	f3 := newFixture(t, nil, 1000)
	if err := f3.pmw.WarmStart(histogram.NewUniform(4), nil); err == nil {
		t.Fatal("size-mismatched warm start accepted")
	}
}

func TestWorstCaseUpdateBound(t *testing.T) {
	f := newFixture(t, nil, 1000)
	// Thm A.4: ln|X| / (η(τα−η)/2) with η = lr, τ = 0.25, α = 0.05.
	eta := 0.005
	got := f.pmw.WorstCaseUpdateBound(eta)
	want := math.Log(8) / (eta * (0.25*0.05 - eta) / 2)
	if math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("bound = %g, want %g", got, want)
	}
	// Precondition violation → +Inf.
	if !math.IsInf(f.pmw.WorstCaseUpdateBound(0.05), 1) {
		t.Fatal("bound finite despite η/α ≥ τ")
	}
	if !math.IsInf(f.pmw.WorstCaseUpdateBound(0), 1) {
		t.Fatal("bound finite for η = 0")
	}
}

func TestEmpiricalUpdatesWithinWorstCase(t *testing.T) {
	// With a constant small lr satisfying the precondition, total
	// purposeful updates on a long workload must stay within Thm A.4.
	eta := 0.005
	f := newFixture(t, func(c *Config) { c.LR = Constant(eta) }, 1e6)
	var qs []*query.Query
	for p := 0; p < 2; p++ {
		for a := 0; a < 4; a++ {
			qs = append(qs, query.MustNew(f.dom, map[int][]int{0: {p}, 1: {a}}))
		}
	}
	for round := 0; round < 200; round++ {
		for _, q := range qs {
			if _, err := f.pmw.Run(q); err != nil {
				t.Fatal(err)
			}
		}
	}
	bound := f.pmw.WorstCaseUpdateBound(eta)
	if got := float64(f.pmw.Stats().Updates); got > bound {
		t.Fatalf("updates %g exceed worst-case bound %g", got, bound)
	}
}
