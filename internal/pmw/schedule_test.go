package pmw

import (
	"math"
	"strings"
	"testing"
)

func TestConstant(t *testing.T) {
	s := Constant(0.25)
	for _, u := range []int{0, 1, 1000} {
		if s.LR(u) != 0.25 {
			t.Fatalf("LR(%d) = %g", u, s.LR(u))
		}
	}
	if !strings.Contains(s.String(), "0.25") {
		t.Fatalf("String = %q", s.String())
	}
}

func TestExpDecay(t *testing.T) {
	s := ExpDecay{Start: 0.25, End: 0.025, HalfLife: 100}
	if s.LR(0) != 0.25 {
		t.Fatalf("LR(0) = %g", s.LR(0))
	}
	// One half-life: End + (Start−End)/2.
	want := 0.025 + (0.25-0.025)/2
	if math.Abs(s.LR(100)-want) > 1e-12 {
		t.Fatalf("LR(100) = %g, want %g", s.LR(100), want)
	}
	if got := s.LR(100000); math.Abs(got-0.025) > 1e-6 {
		t.Fatalf("LR(∞) = %g, want End", got)
	}
	// Monotone decreasing.
	prev := math.Inf(1)
	for u := 0; u < 1000; u += 50 {
		if lr := s.LR(u); lr > prev {
			t.Fatal("ExpDecay not monotone")
		} else {
			prev = lr
		}
	}
	// Degenerate half-life returns End.
	if (ExpDecay{Start: 1, End: 0.1}).LR(5) != 0.1 {
		t.Fatal("zero half-life should pin to End")
	}
}

func TestStepDecay(t *testing.T) {
	s := StepDecay{Start: 0.4, Factor: 0.5, Every: 10, Min: 0.05}
	if s.LR(0) != 0.4 || s.LR(9) != 0.4 {
		t.Fatal("first step wrong")
	}
	if s.LR(10) != 0.2 {
		t.Fatalf("LR(10) = %g", s.LR(10))
	}
	if s.LR(20) != 0.1 {
		t.Fatalf("LR(20) = %g", s.LR(20))
	}
	if s.LR(1000) != 0.05 {
		t.Fatalf("LR floor = %g", s.LR(1000))
	}
	// Every ≤ 0 never decays.
	if (StepDecay{Start: 0.4, Factor: 0.5}).LR(100) != 0.4 {
		t.Fatal("Every=0 decayed")
	}
}

func TestTheoreticalLR(t *testing.T) {
	if TheoreticalLR(0.05) != 0.05/8 {
		t.Fatal("theoretical lr is α/8")
	}
}

func TestScheduleStrings(t *testing.T) {
	for _, s := range []Schedule{
		Constant(0.1),
		ExpDecay{Start: 0.25, End: 0.025, HalfLife: 50},
		StepDecay{Start: 0.4, Factor: 0.5, Every: 10, Min: 0.01},
	} {
		if s.String() == "" {
			t.Fatalf("%T has empty String()", s)
		}
	}
}
