// Package pmw implements PMW-Bypass (Alg. 1 of the Turbo paper), the
// private-multiplicative-weights variant that is Turbo's core contribution,
// along with vanilla PMW as the special case whose heuristic always routes
// through the sparse-vector test.
//
// A PMW-Bypass instance owns one histogram over a fixed data view (the
// whole database, or one node of the tree-structured cache), a sparse
// vector, and a readiness heuristic. For each query it takes one of three
// output paths:
//
//	R1 — heuristic ready, SV test passes: answer from the histogram, free.
//	R2 — heuristic ready, SV test fails: direct Laplace + SV reset, 4ε,
//	     regular PMW histogram update.
//	R3 — heuristic not ready (bypass): direct Laplace, ε, external
//	     histogram update guarded by the τα confidence margin.
//
// Budget is paid through a Payer before any mechanism runs; the package
// never touches raw data except through the Executor interface.
package pmw

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/accountant"
	"repro/internal/heuristic"
	"repro/internal/histogram"
	"repro/internal/noise"
	"repro/internal/query"
	"repro/internal/sparse"
)

// Path identifies which branch of Alg. 1 answered a query.
type Path int

const (
	// PathR1 is the free histogram answer (SV test passed).
	PathR1 Path = iota
	// PathR2 is the expensive miss: heuristic said ready, SV failed.
	PathR2
	// PathR3 is the bypass branch: direct Laplace with external update.
	PathR3
)

// String implements fmt.Stringer.
func (p Path) String() string {
	switch p {
	case PathR1:
		return "R1"
	case PathR2:
		return "R2"
	case PathR3:
		return "R3"
	default:
		return fmt.Sprintf("path(%d)", int(p))
	}
}

// Executor is the slice of the DP engine a PMW-Bypass needs: query
// execution over its own data view. Implementations bind the partition
// window (Fig. 7b QueryExecutor).
type Executor interface {
	// True returns the non-private result of q on the view.
	True(q *query.Query) (float64, error)
	// DP returns the ε-DP result of q, perturbing trueResult (pass NaN to
	// let the executor compute it). The caller has already paid.
	DP(q *query.Query, eps float64, trueResult float64) (float64, error)
}

// Payer abstracts budget payment so the same Alg. 1 control flow supports
// pure-DP accounting (Laplace, the evaluated artifact) and RDP accounting
// (Gaussian extension, §A.6).
type Payer interface {
	// PayLaplace pays for one direct mechanism execution at the
	// calibrated ε.
	PayLaplace() error
	// PaySVInit pays for one sparse-vector (re)initialization (3ε under
	// pure DP).
	PaySVInit() error
	// HasBudget reports whether further queries may proceed.
	HasBudget() bool
}

// PurePayer implements Payer over a scalar pure-DP accountant with
// per-query budget Eps.
type PurePayer struct {
	Acct accountant.Accountant
	Eps  float64
}

// PayLaplace pays ε.
func (p PurePayer) PayLaplace() error { return p.Acct.Pay(p.Eps) }

// PaySVInit pays 3ε.
func (p PurePayer) PaySVInit() error { return p.Acct.Pay(3 * p.Eps) }

// HasBudget defers to the accountant.
func (p PurePayer) HasBudget() bool { return p.Acct.HasBudget() }

// RDPPayer implements Payer over an RDP filter, pricing the Laplace (or
// Gaussian) mechanism and SV initialization by their RDP curves (§A.6).
type RDPPayer struct {
	Filter *accountant.RDPFilter
	Orders []float64
	// Eps is the pure-DP calibration of the internal SV Laplace noise.
	Eps float64
	// GaussianSigma, when positive, prices direct executions as a
	// Gaussian mechanism with noise N(0, σ²) on the fraction result,
	// whose ℓ2 sensitivity is 1/n; otherwise direct executions are
	// priced as Laplace at Eps.
	GaussianSigma float64
	// N is the public row count of the view (needed for the Gaussian
	// sensitivity).
	N int
}

// PayLaplace prices one direct mechanism execution.
func (p RDPPayer) PayLaplace() error {
	if p.GaussianSigma > 0 {
		// Noise N(0, σ²) on an ℓ2-sensitivity-1/n query: RDP cost
		// α/(2·n²σ²) per order.
		return p.Filter.Pay(accountant.GaussianCurve(p.Orders, p.GaussianSigma, 1/float64(p.N)))
	}
	return p.Filter.Pay(accountant.LaplaceCurve(p.Orders, p.Eps))
}

// PaySVInit prices one SV initialization.
func (p RDPPayer) PaySVInit() error {
	return p.Filter.Pay(accountant.SVInitCurve(p.Orders, p.Eps))
}

// HasBudget defers to the filter.
func (p RDPPayer) HasBudget() bool { return p.Filter.HasBudget() }

// Config carries the Alg. 1 parameters.
type Config struct {
	// Alpha, Beta are the per-query accuracy target: |answer − truth| ≤ α
	// with probability 1−β.
	Alpha, Beta float64
	// N is the public number of rows in the PMW's data view.
	N int
	// DomainSize is |X|.
	DomainSize int
	// Tau is the external-update confidence margin τ ∈ (lr/α, 1/2].
	Tau float64
	// LR is the learning-rate schedule; nil defaults to the theoretical
	// α/8.
	LR Schedule
	// Heuristic routes queries; nil defaults to Turbo's adaptive per-bin
	// heuristic with (C0=100, S0=5), the paper's Covid configuration.
	Heuristic heuristic.Heuristic
	// Epsilon overrides the calibrated per-query budget when positive;
	// otherwise ε = 4ln(1/β)/(nα).
	Epsilon float64
}

func (c *Config) validate() error {
	if c.Alpha <= 0 || c.Alpha >= 1 {
		return fmt.Errorf("pmw: alpha %g out of (0,1)", c.Alpha)
	}
	if c.Beta <= 0 || c.Beta >= 1 {
		return fmt.Errorf("pmw: beta %g out of (0,1)", c.Beta)
	}
	if c.N <= 0 {
		return fmt.Errorf("pmw: n must be positive, got %d", c.N)
	}
	if c.DomainSize <= 0 {
		return fmt.Errorf("pmw: domain size must be positive, got %d", c.DomainSize)
	}
	if c.Tau <= 0 || c.Tau > 0.5 {
		return fmt.Errorf("pmw: tau %g out of (0, 1/2]", c.Tau)
	}
	return nil
}

// Stats aggregates a PMW-Bypass's activity for the evaluation harness.
type Stats struct {
	Queries  int
	R1, R2   int
	R3       int
	Updates  int // purposeful histogram updates (R2 + confident R3)
	SVResets int
}

// PMW is one PMW-Bypass instance. Not safe for concurrent use; the session
// layer serializes access.
type PMW struct {
	cfg   Config
	eps   float64
	hist  *histogram.Histogram
	sv    *sparse.SV
	svUp  bool // an SV reset has been paid and performed
	heur  heuristic.Heuristic
	exec  Executor
	payer Payer
	stats Stats
}

// Result reports one answered query.
type Result struct {
	Value float64 // the released, (α,β)-accurate answer
	Path  Path
	// Paid is the pure-DP budget consumed by this query (0, ε, or 4ε).
	Paid float64
	// Updated reports whether the histogram received a purposeful update.
	Updated bool
}

// ErrNoBudget wraps accountant.ErrBudgetExhausted for callers that want a
// stable sentinel at this layer.
var ErrNoBudget = accountant.ErrBudgetExhausted

// New creates a PMW-Bypass over the given executor, paying through payer
// and drawing SV noise from rng.
func New(cfg Config, exec Executor, payer Payer, rng *noise.Rng) (*PMW, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if exec == nil || payer == nil || rng == nil {
		return nil, errors.New("pmw: nil executor, payer, or rng")
	}
	eps := cfg.Epsilon
	if eps <= 0 {
		eps = noise.EpsilonForAccuracy(cfg.Alpha, cfg.Beta, cfg.N)
	}
	if cfg.LR == nil {
		cfg.LR = Constant(TheoreticalLR(cfg.Alpha))
	}
	h := cfg.Heuristic
	if h == nil {
		h = heuristic.NewAdaptivePerBin(100, 5)
	}
	return &PMW{
		cfg:   cfg,
		eps:   eps,
		hist:  histogram.NewUniform(cfg.DomainSize),
		sv:    sparse.New(eps, cfg.Alpha, cfg.N, rng),
		heur:  h,
		exec:  exec,
		payer: payer,
	}, nil
}

// NewVanilla creates a vanilla PMW: PMW-Bypass whose heuristic always says
// ready, so every query goes through the SV test (the baseline of Fig. 3).
func NewVanilla(cfg Config, exec Executor, payer Payer, rng *noise.Rng) (*PMW, error) {
	cfg.Heuristic = heuristic.AlwaysReady{}
	return New(cfg, exec, payer, rng)
}

// Epsilon returns the calibrated per-query budget ε.
func (p *PMW) Epsilon() float64 { return p.eps }

// Histogram exposes the internal histogram (read-only use: warm-start and
// convergence metrics).
func (p *PMW) Histogram() *histogram.Histogram { return p.hist }

// Heuristic returns the routing heuristic.
func (p *PMW) Heuristic() heuristic.Heuristic { return p.heur }

// Stats returns activity counters.
func (p *PMW) Stats() Stats { return p.stats }

// WarmStart replaces the histogram (and, when both heuristics support it,
// the heuristic state) with warm copies, implementing §4.5. It must be
// called before the first query.
func (p *PMW) WarmStart(h *histogram.Histogram, heur heuristic.Heuristic) error {
	if p.stats.Queries > 0 {
		return errors.New("pmw: WarmStart after queries were served")
	}
	if h.Size() != p.cfg.DomainSize {
		return fmt.Errorf("pmw: warm-start histogram size %d != domain %d", h.Size(), p.cfg.DomainSize)
	}
	if !h.Normalized(1e-6) {
		return errors.New("pmw: warm-start histogram not normalized")
	}
	p.hist = h
	if heur != nil {
		p.heur = heur
	}
	return nil
}

// EstimateOnly returns the histogram's estimate for q without any privacy
// interaction. The tree uses it to build a combined estimate across nodes
// before a single SV check.
func (p *PMW) EstimateOnly(q *query.Query) float64 { return p.hist.Eval(q) }

// Ready reports the heuristic's routing decision for q without side
// effects on counters.
func (p *PMW) Ready(q *query.Query) bool { return p.heur.IsReady(p.hist, q) }

// ensureSV pays for and performs an SV reset when no live SV exists.
// Payment is lazy rather than up-front as in Alg. 1 l.10; total
// consumption is identical and no budget is wasted when the PMW branch is
// never taken (e.g. a tree node that only ever bypasses).
func (p *PMW) ensureSV() error {
	if p.svUp && p.sv.Live() {
		return nil
	}
	if err := p.payer.PaySVInit(); err != nil {
		return err
	}
	p.sv.Reset()
	p.svUp = true
	p.stats.SVResets++
	return nil
}

// Run answers one query through Alg. 1. On budget exhaustion it returns
// ErrNoBudget (wrapped) and releases nothing.
func (p *PMW) Run(q *query.Query) (Result, error) {
	if p.heur.IsReady(p.hist, q) {
		return p.runPMWBranch(q)
	}
	return p.runBypassBranch(q)
}

// runPMWBranch is the regular PMW path: SV test of the histogram estimate,
// falling back to a paid Laplace execution plus SV reset on failure.
func (p *PMW) runPMWBranch(q *query.Query) (Result, error) {
	if err := p.ensureSV(); err != nil {
		return Result{}, err
	}
	r1 := p.hist.Eval(q)
	trueRes, err := p.exec.True(q)
	if err != nil {
		return Result{}, err
	}
	if p.sv.Test(r1, trueRes) {
		p.stats.Queries++
		p.stats.R1++
		return Result{Value: r1, Path: PathR1}, nil
	}
	// SV failed and is consumed: pay for the Laplace release and the SV
	// re-initialization (4ε total under pure DP), then update.
	if err := p.payer.PayLaplace(); err != nil {
		return Result{}, err
	}
	if err := p.payer.PaySVInit(); err != nil {
		return Result{}, err
	}
	r2, err := p.exec.DP(q, p.eps, trueRes)
	if err != nil {
		return Result{}, err
	}
	lr := p.cfg.LR.LR(p.hist.Updates())
	step := lr
	if r2 < r1 {
		step = -lr
	}
	p.hist.Update(q, step)
	p.heur.Penalize(p.hist, q)
	p.sv.Reset() // already paid above
	p.stats.SVResets++
	p.stats.Queries++
	p.stats.R2++
	p.stats.Updates++
	return Result{Value: r2, Path: PathR2, Paid: 4 * p.eps, Updated: true}, nil
}

// runBypassBranch executes directly with Laplace and applies the external
// update guarded by the τα margin (Alg. 1 ll.29-34).
func (p *PMW) runBypassBranch(q *query.Query) (Result, error) {
	if err := p.payer.PayLaplace(); err != nil {
		return Result{}, err
	}
	r3, err := p.exec.DP(q, p.eps, math.NaN())
	if err != nil {
		return Result{}, err
	}
	res := Result{Value: r3, Path: PathR3, Paid: p.eps}
	est := p.hist.Eval(q)
	margin := p.cfg.Tau * p.cfg.Alpha
	lr := p.cfg.LR.LR(p.hist.Updates())
	switch {
	case r3 > est+margin:
		p.hist.Update(q, lr)
		res.Updated = true
	case r3 < est-margin:
		p.hist.Update(q, -lr)
		res.Updated = true
	}
	if res.Updated {
		p.stats.Updates++
	}
	p.stats.Queries++
	p.stats.R3++
	return res, nil
}

// ExternalUpdate applies the guarded external-update rule with an answer
// obtained elsewhere (the tree's Laplace branch updates member node
// histograms this way, Alg. 2 ll.32-33). It consumes no budget.
func (p *PMW) ExternalUpdate(q *query.Query, dpResult float64) bool {
	est := p.hist.Eval(q)
	margin := p.cfg.Tau * p.cfg.Alpha
	lr := p.cfg.LR.LR(p.hist.Updates())
	switch {
	case dpResult > est+margin:
		p.hist.Update(q, lr)
	case dpResult < est-margin:
		p.hist.Update(q, -lr)
	default:
		return false
	}
	p.stats.Updates++
	return true
}

// DirectedUpdate applies a PMW-style update with an explicit sign, used by
// the tree when a shared SV decides one direction for all member nodes
// (Alg. 2 ll.24-26).
func (p *PMW) DirectedUpdate(q *query.Query, positive bool) {
	lr := p.cfg.LR.LR(p.hist.Updates())
	if !positive {
		lr = -lr
	}
	p.hist.Update(q, lr)
	p.stats.Updates++
}

// Penalize forwards an SV failure observed by the tree to this node's
// heuristic.
func (p *PMW) Penalize(q *query.Query) { p.heur.Penalize(p.hist, q) }

// WorstCaseUpdateBound returns the Thm A.4 bound on purposeful updates,
// ln|X| / (η(τα−η)/2), for the configured τ and a constant learning rate
// η; it returns +Inf when η/α ≥ τ (the precondition fails).
func (p *PMW) WorstCaseUpdateBound(eta float64) float64 {
	alpha, tau := p.cfg.Alpha, p.cfg.Tau
	if eta <= 0 || eta/alpha >= tau {
		return math.Inf(1)
	}
	return math.Log(float64(p.cfg.DomainSize)) / (eta * (tau*alpha - eta) / 2)
}
