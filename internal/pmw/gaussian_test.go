package pmw

import (
	"errors"
	"math"
	"testing"

	"repro/internal/accountant"
	"repro/internal/dataset"
	"repro/internal/domain"
	"repro/internal/heuristic"
	"repro/internal/noise"
	"repro/internal/query"
)

// newGaussianFixture wires the §A.6 extension: Gaussian executor + RDP
// filter enforcing a target (ε_G, δ_G)-DP guarantee.
func newGaussianFixture(t *testing.T, epsG, deltaG float64) (*PMW, *accountant.RDPFilter, *dataset.Dataset) {
	t.Helper()
	dom := domain.MustNew(
		domain.Attribute{Name: "p", Card: 2},
		domain.Attribute{Name: "a", Card: 4},
	)
	ds := dataset.New(dom, 1)
	counts := []int{100, 200, 300, 400, 4000, 600, 700, 1700}
	for bin, c := range counts {
		_ = ds.AddCount(0, bin, c)
	}
	rng := noise.NewRng(31)
	n := ds.NRowsAll()
	alpha, beta, tau := 0.05, 0.001, 0.25
	eps := noise.EpsilonForAccuracy(alpha, beta, n)
	sigma := noise.GaussianSigmaForBypass(alpha, n, eps, tau)
	exec := dataset.NewExecutor(ds, rng.Fork()).WithGaussian(sigma)
	filter := accountant.NewRDPFilterForDP(accountant.DefaultOrders, epsG, deltaG)
	payer := RDPPayer{
		Filter: filter, Orders: accountant.DefaultOrders,
		Eps: eps, GaussianSigma: sigma, N: n,
	}
	p, err := New(Config{
		Alpha: alpha, Beta: beta, N: n, DomainSize: dom.Size(),
		Tau: tau, LR: Constant(0.2),
		Heuristic: heuristic.NewAdaptivePerBin(2, 1),
	}, RangeExecutor{Exec: exec, Start: 0, End: 0}, payer, rng.Fork())
	if err != nil {
		t.Fatal(err)
	}
	return p, filter, ds
}

func TestGaussianPMWBypassAccuracy(t *testing.T) {
	p, _, ds := newGaussianFixture(t, 50, 1e-6)
	dom := ds.Domain()
	q := query.MustNew(dom, map[int][]int{0: {1}})
	truth, _ := ds.TrueFraction(q, 0, 0)
	bad := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		res, err := p.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Value-truth) > 0.05 {
			bad++
		}
	}
	if bad > 2 {
		t.Fatalf("%d/%d Gaussian answers outside α", bad, trials)
	}
}

func TestGaussianPMWBypassTrainsAndGoesFree(t *testing.T) {
	p, filter, ds := newGaussianFixture(t, 50, 1e-6)
	dom := ds.Domain()
	var qs []*query.Query
	for pv := 0; pv < 2; pv++ {
		for a := 0; a < 4; a++ {
			qs = append(qs, query.MustNew(dom, map[int][]int{0: {pv}, 1: {a}}))
		}
	}
	for round := 0; round < 6; round++ {
		for _, q := range qs {
			if _, err := p.Run(q); err != nil {
				t.Fatal(err)
			}
		}
	}
	if p.Stats().R1 == 0 {
		t.Fatalf("Gaussian PMW-Bypass never reached the free path: %+v", p.Stats())
	}
	// Accepted history must convert to at most the configured ε_G.
	if got := filter.SpentDP(1e-6); got > 50+1e-6 {
		t.Fatalf("spent %g exceeds eps_G", got)
	}
}

func TestGaussianPMWBypassRespectsRDPBudget(t *testing.T) {
	// Small (but feasible: ε_G must exceed ln(1/δ)/(α_max−1) for some
	// order) budget: the filter must stop the PMW and the accepted
	// history must convert to at most ε_G.
	p, filter, ds := newGaussianFixture(t, 0.5, 1e-6)
	q := query.MustNew(ds.Domain(), map[int][]int{0: {1}})
	var err error
	for i := 0; i < 100000; i++ {
		if _, err = p.Run(q); err != nil {
			break
		}
	}
	if !errors.Is(err, accountant.ErrBudgetExhausted) {
		t.Fatalf("err = %v, want exhaustion", err)
	}
	if got := filter.SpentDP(1e-6); got > 0.5+1e-9 {
		t.Fatalf("spent DP %g exceeds eps_G", got)
	}
}

func TestRDPPayerLaplacePricing(t *testing.T) {
	// Without a Gaussian sigma, the payer prices direct executions by the
	// Laplace RDP curve; many payments should fit where basic composition
	// would not.
	eps := 0.01
	filter := accountant.NewRDPFilterForDP(accountant.DefaultOrders, 1.0, 1e-6)
	payer := RDPPayer{Filter: filter, Orders: accountant.DefaultOrders, Eps: eps, N: 1000}
	accepted := 0
	for i := 0; i < 100000; i++ {
		if payer.PayLaplace() != nil {
			break
		}
		accepted++
	}
	// Basic composition at ε_G=1 admits 100 payments of 0.01; RDP should
	// admit strictly more.
	if accepted <= 100 {
		t.Fatalf("RDP accounting admitted only %d payments (basic composition: 100)", accepted)
	}
	if !payer.HasBudget() == filter.HasBudget() && payer.HasBudget() != filter.HasBudget() {
		t.Fatal("HasBudget disagreement")
	}
}

func TestCutoffBoundsBypassDrain(t *testing.T) {
	// §A.5: wrapping the heuristic in a cutoff forces the PMW branch
	// after k bypass queries, so budget-consuming queries without updates
	// are bounded by k.
	dom := domain.MustNew(domain.Attribute{Name: "x", Card: 8})
	ds := dataset.New(dom, 1)
	for b := 0; b < 8; b++ {
		_ = ds.AddCount(0, b, 1000+b*500)
	}
	rng := noise.NewRng(77)
	exec := dataset.NewExecutor(ds, rng.Fork())
	filt := accountant.NewFilter(1000)
	n := ds.NRowsAll()
	cut := heuristic.NewCutoff(heuristic.NeverReady{}, 5)
	p, err := New(Config{
		Alpha: 0.05, Beta: 0.001, N: n, DomainSize: 8,
		Tau: 0.25, LR: Constant(0.1), Heuristic: cut,
	}, RangeExecutor{Exec: exec, Start: 0, End: 0},
		PurePayer{Acct: filt, Eps: noise.EpsilonForAccuracy(0.05, 0.001, n)},
		rng.Fork())
	if err != nil {
		t.Fatal(err)
	}
	q := query.MustNew(dom, map[int][]int{0: {3}})
	r3s := 0
	for i := 0; i < 50; i++ {
		res, err := p.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Path == PathR3 {
			r3s++
		}
	}
	if r3s > 5 {
		t.Fatalf("cutoff allowed %d bypass queries, want ≤ 5", r3s)
	}
	if p.Stats().R1+p.Stats().R2 == 0 {
		t.Fatal("cutoff never forced the PMW branch")
	}
}
