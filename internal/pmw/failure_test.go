package pmw

import (
	"errors"
	"testing"

	"repro/internal/accountant"
	"repro/internal/dataset"
	"repro/internal/domain"
	"repro/internal/heuristic"
	"repro/internal/noise"
	"repro/internal/query"
)

// faultyExecutor injects failures into chosen executor calls to verify
// the PMW's behaviour when the data layer misbehaves mid-protocol.
type faultyExecutor struct {
	inner    Executor
	failTrue bool
	failDP   bool
}

var errInjected = errors.New("injected executor failure")

func (f *faultyExecutor) True(q *query.Query) (float64, error) {
	if f.failTrue {
		return 0, errInjected
	}
	return f.inner.True(q)
}

func (f *faultyExecutor) DP(q *query.Query, eps float64, trueResult float64) (float64, error) {
	if f.failDP {
		return 0, errInjected
	}
	return f.inner.DP(q, eps, trueResult)
}

func newFaultyFixture(t *testing.T) (*PMW, *faultyExecutor, *accountant.Filter, *domain.Domain) {
	t.Helper()
	dom := domain.MustNew(domain.Attribute{Name: "x", Card: 8})
	ds := dataset.New(dom, 1)
	for b := 0; b < 8; b++ {
		_ = ds.AddCount(0, b, 1000+b*300)
	}
	rng := noise.NewRng(55)
	inner := RangeExecutor{Exec: dataset.NewExecutor(ds, rng.Fork()), Start: 0, End: 0}
	fe := &faultyExecutor{inner: inner}
	filt := accountant.NewFilter(1000)
	n := ds.NRowsAll()
	p, err := New(Config{
		Alpha: 0.05, Beta: 0.001, N: n, DomainSize: 8,
		Tau: 0.25, LR: Constant(0.2),
		Heuristic: heuristic.NewAdaptivePerBin(2, 1),
	}, fe, PurePayer{Acct: filt, Eps: noise.EpsilonForAccuracy(0.05, 0.001, n)}, rng.Fork())
	if err != nil {
		t.Fatal(err)
	}
	return p, fe, filt, dom
}

func TestBypassDPFailureSurfacesAfterPayment(t *testing.T) {
	// If the DP execution fails after payment, the error surfaces and
	// the budget stays deducted — over-counting consumption is the safe
	// direction for privacy, and the histogram must remain untouched.
	p, fe, filt, dom := newFaultyFixture(t)
	fe.failDP = true
	q := query.MustNew(dom, map[int][]int{0: {3}})
	before := p.Histogram().State()
	_, err := p.Run(q)
	if !errors.Is(err, errInjected) {
		t.Fatalf("err = %v", err)
	}
	if filt.Spent() == 0 {
		t.Fatal("payment rolled back after execution failure (unsafe direction)")
	}
	after := p.Histogram().State()
	for i := range before.Weights {
		if before.Weights[i] != after.Weights[i] {
			t.Fatal("failed execution mutated the histogram")
		}
	}
	if p.Stats().Queries != 0 {
		t.Fatal("failed query counted as answered")
	}
	// Recovery: clearing the fault restores normal service.
	fe.failDP = false
	if _, err := p.Run(q); err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
}

func TestPMWBranchTrueFailure(t *testing.T) {
	// The SV check needs the true result; if the scan fails, the query
	// fails without releasing anything and without consuming the SV.
	p, fe, _, dom := newFaultyFixture(t)
	q := query.MustNew(dom, map[int][]int{0: {3}})
	// Train until the heuristic routes to the PMW branch.
	for i := 0; i < 5; i++ {
		if _, err := p.Run(q); err != nil {
			t.Fatal(err)
		}
	}
	if !p.Ready(q) {
		t.Skip("fixture did not reach readiness; nothing to inject into")
	}
	fe.failTrue = true
	if _, err := p.Run(q); !errors.Is(err, errInjected) {
		t.Fatalf("err = %v", err)
	}
	fe.failTrue = false
	if _, err := p.Run(q); err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
}
