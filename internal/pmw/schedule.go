// Learning-rate schedules for PMW-Bypass (§4.3 "Learning rate").
//
// Prior PMW work hard-codes lr = α/8 for worst-case convergence; Turbo
// shows empirically that much larger rates converge faster, and uses a
// scheduler that starts high and decays as the histogram converges (the
// paper's Covid configuration starts at 0.25 and decays to 0.025).

package pmw

import (
	"fmt"
	"math"
)

// Schedule maps the number of purposeful updates applied so far to the
// learning rate of the next update.
type Schedule interface {
	// LR returns the step size for the update numbered updates (0-based).
	LR(updates int) float64
	// String describes the schedule for experiment output.
	String() string
}

// Constant is a fixed learning rate, as in the theoretical PMW protocol.
type Constant float64

// LR implements Schedule.
func (c Constant) LR(int) float64 { return float64(c) }

// String implements Schedule.
func (c Constant) String() string { return fmt.Sprintf("const(%g)", float64(c)) }

// ExpDecay decays geometrically from Start toward End with the given
// half-life in updates: lr(u) = End + (Start−End)·2^(−u/HalfLife).
type ExpDecay struct {
	Start    float64
	End      float64
	HalfLife float64
}

// LR implements Schedule.
func (e ExpDecay) LR(updates int) float64 {
	if e.HalfLife <= 0 {
		return e.End
	}
	return e.End + (e.Start-e.End)*math.Exp2(-float64(updates)/e.HalfLife)
}

// String implements Schedule.
func (e ExpDecay) String() string {
	return fmt.Sprintf("expdecay(%g->%g,hl=%g)", e.Start, e.End, e.HalfLife)
}

// StepDecay multiplies the rate by Factor every Every updates, clamped at
// Min.
type StepDecay struct {
	Start  float64
	Factor float64
	Every  int
	Min    float64
}

// LR implements Schedule.
func (s StepDecay) LR(updates int) float64 {
	if s.Every <= 0 {
		return s.Start
	}
	lr := s.Start * math.Pow(s.Factor, float64(updates/s.Every))
	if lr < s.Min {
		return s.Min
	}
	return lr
}

// String implements Schedule.
func (s StepDecay) String() string {
	return fmt.Sprintf("stepdecay(%g x%g/%d,min=%g)", s.Start, s.Factor, s.Every, s.Min)
}

// TheoreticalLR returns α/8, the learning rate PMW theory fixes for
// worst-case convergence [58]; Fig. 8(d) shows empirical convergence is
// much faster at larger rates.
func TheoreticalLR(alpha float64) float64 { return alpha / 8 }
