// Adapters binding a PMW-Bypass to a partition range of the dataset
// substrate.

package pmw

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/query"
)

// RangeExecutor implements Executor over a fixed partition window of a
// dataset — the data view one PMW-Bypass (or tree node) owns.
type RangeExecutor struct {
	Exec       *dataset.Executor
	Start, End int
}

// True returns the non-private result of q over the window.
func (r RangeExecutor) True(q *query.Query) (float64, error) {
	return r.Exec.ExecuteNP(q, r.Start, r.End)
}

// DP returns the ε-DP result of q over the window.
func (r RangeExecutor) DP(q *query.Query, eps float64, trueResult float64) (float64, error) {
	return r.Exec.ExecuteDP(q, r.Start, r.End, eps, trueResult)
}

// NaN is a convenience for callers passing "no precomputed true result".
func NaN() float64 { return math.NaN() }
