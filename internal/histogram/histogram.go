// Package histogram implements the multiplicative-weights histogram at the
// heart of PMW and PMW-Bypass (Alg. 1 of the Turbo paper).
//
// A histogram is a probability distribution h over the data domain X,
// initialized uniform and updated multiplicatively from DP query results:
//
//	g(v) ← h(v)·exp(s·q(v))    for a signed step s = ±lr
//	h(v) ← g(v) / Σ_w g(w)     (renormalize)
//
// Since Turbo's queries are predicates (q(v) ∈ {0,1}), an update multiplies
// exactly the bins in the query's support by e^s and renormalizes.
//
// The histogram also tracks per-bin purposeful-update counters c (Fig. 2 and
// Fig. 5 in the paper), which Turbo's readiness heuristic consumes. Counters
// are float64 because warm-starting internal tree nodes averages children,
// yielding fractional counts (Fig. 5 shows e.g. c=0.5).
package histogram

import (
	"fmt"
	"math"

	"repro/internal/query"
)

// Histogram is a normalized distribution over domain bins with per-bin
// update counters. It is not safe for concurrent mutation.
type Histogram struct {
	weights []float64
	counts  []float64
	updates int // total number of purposeful updates applied
}

// NewUniform returns the uniform distribution over a domain of the given
// size, with all counters zero.
func NewUniform(size int) *Histogram {
	if size <= 0 {
		panic(fmt.Sprintf("histogram: bad size %d", size))
	}
	h := &Histogram{
		weights: make([]float64, size),
		counts:  make([]float64, size),
	}
	w := 1.0 / float64(size)
	for i := range h.weights {
		h.weights[i] = w
	}
	return h
}

// FromWeights builds a histogram from an arbitrary non-negative weight
// vector, normalizing it. At least one weight must be positive.
func FromWeights(w []float64) (*Histogram, error) {
	sum := 0.0
	for i, x := range w {
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("histogram: bad weight %g at bin %d", x, i)
		}
		sum += x
	}
	if sum <= 0 {
		return nil, fmt.Errorf("histogram: all weights zero")
	}
	h := &Histogram{weights: make([]float64, len(w)), counts: make([]float64, len(w))}
	for i, x := range w {
		h.weights[i] = x / sum
	}
	return h, nil
}

// Size returns the number of bins.
func (h *Histogram) Size() int { return len(h.weights) }

// Weight returns h(bin).
func (h *Histogram) Weight(bin int) float64 { return h.weights[bin] }

// Weights returns the underlying weight vector. Callers must not modify it.
func (h *Histogram) Weights() []float64 { return h.weights }

// Count returns the purposeful-update counter of bin.
func (h *Histogram) Count(bin int) float64 { return h.counts[bin] }

// Updates returns the total number of purposeful updates applied to h,
// including those inherited through warm-start.
func (h *Histogram) Updates() int { return h.updates }

// Eval returns the histogram's estimate q(h) = q·h for a linear query.
func (h *Histogram) Eval(q *query.Query) float64 { return q.Eval(h.weights) }

// Update applies one multiplicative-weights step of signed size step
// (s = ±lr in Alg. 1) for query q, renormalizes, and increments the support
// bins' counters. A step of 0 is a no-op (the external-update rule emits 0
// when not confident; see Alg. 1 l.33).
func (h *Histogram) Update(q *query.Query, step float64) {
	if step == 0 {
		return
	}
	if math.IsNaN(step) || math.IsInf(step, 0) {
		panic(fmt.Sprintf("histogram: bad step %g", step))
	}
	factor := math.Exp(step)
	// Support mass before the update; the new total is
	// 1 + (factor-1)·mass, so we renormalize with a single pass.
	mass := 0.0
	q.ForEachBin(func(bin int) {
		mass += h.weights[bin]
		h.weights[bin] *= factor
		h.counts[bin]++
	})
	total := 1 + (factor-1)*mass
	inv := 1 / total
	for i := range h.weights {
		h.weights[i] *= inv
	}
	h.updates++
}

// MinSupportCount returns the smallest per-bin counter among the bins in
// q's support — the quantity Turbo's per-bin readiness heuristic thresholds.
func (h *Histogram) MinSupportCount(q *query.Query) float64 {
	min := math.Inf(1)
	q.ForEachBin(func(bin int) {
		if h.counts[bin] < min {
			min = h.counts[bin]
		}
	})
	return min
}

// LeastUpdatedBins returns the support bins whose counter equals the support
// minimum. The heuristic penalizes only these bins after an SV failure, so a
// single untrained bin cannot set back queries that use trained bins only
// (§4.3 "Heuristic ISHISTOGRAMREADY").
func (h *Histogram) LeastUpdatedBins(q *query.Query) []int {
	min := h.MinSupportCount(q)
	var bins []int
	q.ForEachBin(func(bin int) {
		if h.counts[bin] == min {
			bins = append(bins, bin)
		}
	})
	return bins
}

// Clone returns a deep copy of h, counters included. Used by the warm-start
// leaf procedure (§4.5): a new leaf copies the previous partition's leaf.
func (h *Histogram) Clone() *Histogram {
	c := &Histogram{
		weights: append([]float64(nil), h.weights...),
		counts:  append([]float64(nil), h.counts...),
		updates: h.updates,
	}
	return c
}

// Average returns the bin-wise average of the given histograms, used by the
// warm-start procedure for non-leaf tree nodes (§4.5). Counters and the
// update total are averaged too. All inputs must share a size.
func Average(hs ...*Histogram) (*Histogram, error) {
	if len(hs) == 0 {
		return nil, fmt.Errorf("histogram: Average of nothing")
	}
	size := hs[0].Size()
	out := &Histogram{
		weights: make([]float64, size),
		counts:  make([]float64, size),
	}
	totalUpdates := 0
	for _, h := range hs {
		if h.Size() != size {
			return nil, fmt.Errorf("histogram: Average size mismatch %d vs %d", h.Size(), size)
		}
		for i := range out.weights {
			out.weights[i] += h.weights[i]
			out.counts[i] += h.counts[i]
		}
		totalUpdates += h.updates
	}
	inv := 1 / float64(len(hs))
	for i := range out.weights {
		out.weights[i] *= inv
		out.counts[i] *= inv
	}
	out.updates = totalUpdates / len(hs)
	return out, nil
}

// MinWeight returns the smallest bin weight. Warm-start convergence
// (Thm A.9) requires h0(x) ≥ 1/(λ|X|); λ = 1/(MinWeight·|X|).
func (h *Histogram) MinWeight() float64 {
	min := math.Inf(1)
	for _, w := range h.weights {
		if w < min {
			min = w
		}
	}
	return min
}

// Lambda returns the warm-start prior-flatness parameter λ ≥ 1 such that
// h(x) ≥ 1/(λ|X|) for all x (Thm A.9).
func (h *Histogram) Lambda() float64 {
	mw := h.MinWeight()
	if mw <= 0 {
		return math.Inf(1)
	}
	return 1 / (mw * float64(len(h.weights)))
}

// RelativeEntropy computes D(p‖h) = Σ p(x)·ln(p(x)/h(x)), the potential
// tracked by the convergence proofs (Thm A.4). p must be a distribution of
// the same size; bins where p(x)=0 contribute zero.
func (h *Histogram) RelativeEntropy(p []float64) float64 {
	if len(p) != len(h.weights) {
		panic(fmt.Sprintf("histogram: RelativeEntropy got %d-vector for %d bins", len(p), len(h.weights)))
	}
	d := 0.0
	for i, px := range p {
		if px <= 0 {
			continue
		}
		d += px * math.Log(px/h.weights[i])
	}
	return d
}

// Normalized reports whether the weights form a distribution within tol.
// It exists for tests and debug assertions.
func (h *Histogram) Normalized(tol float64) bool {
	sum := 0.0
	for _, w := range h.weights {
		if w < 0 || math.IsNaN(w) {
			return false
		}
		sum += w
	}
	return math.Abs(sum-1) <= tol
}

// MemoryBytes estimates the resident size of the histogram state: two
// float64 vectors over the domain. Used by the §6.5 memory evaluation.
func (h *Histogram) MemoryBytes() int {
	return 16 * len(h.weights)
}

// State is the serializable form of a histogram, for persisting caching
// state the way the prototype keeps it in Redis (§5).
type State struct {
	Weights []float64
	Counts  []float64
	Updates int
}

// State exports a copy of the histogram's state.
func (h *Histogram) State() State {
	return State{
		Weights: append([]float64(nil), h.weights...),
		Counts:  append([]float64(nil), h.counts...),
		Updates: h.updates,
	}
}

// FromState reconstructs a histogram, validating normalization.
func FromState(s State) (*Histogram, error) {
	if len(s.Weights) == 0 || len(s.Weights) != len(s.Counts) {
		return nil, fmt.Errorf("histogram: bad state (%d weights, %d counts)", len(s.Weights), len(s.Counts))
	}
	h := &Histogram{
		weights: append([]float64(nil), s.Weights...),
		counts:  append([]float64(nil), s.Counts...),
		updates: s.Updates,
	}
	if !h.Normalized(1e-6) {
		return nil, fmt.Errorf("histogram: state not normalized")
	}
	return h, nil
}
