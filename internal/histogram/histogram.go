// Package histogram implements the multiplicative-weights histogram at the
// heart of PMW and PMW-Bypass (Alg. 1 of the Turbo paper).
//
// A histogram is a probability distribution h over the data domain X,
// initialized uniform and updated multiplicatively from DP query results:
//
//	g(v) ← h(v)·exp(s·q(v))    for a signed step s = ±lr
//	h(v) ← g(v) / Σ_w g(w)     (renormalize)
//
// Since Turbo's queries are predicates (q(v) ∈ {0,1}), an update multiplies
// exactly the bins in the query's support by e^s and renormalizes.
//
// The histogram also tracks per-bin purposeful-update counters c (Fig. 2 and
// Fig. 5 in the paper), which Turbo's readiness heuristic consumes. Counters
// are float64 because warm-starting internal tree nodes averages children,
// yielding fractional counts (Fig. 5 shows e.g. c=0.5).
package histogram

import (
	"fmt"
	"math"

	"repro/internal/query"
)

// Histogram is a normalized distribution over domain bins with per-bin
// update counters. It is not safe for concurrent mutation.
//
// Renormalization is lazy: weights store un-renormalized values and scale
// carries the accumulated renormalization product, so the true weight of
// bin i is weights[i]·scale. An update therefore touches only the support
// bins plus one scalar, instead of sweeping the whole domain; the scale is
// folded back into the weights ("settled") on a deterministic cadence —
// every settleEvery updates, or when the scale leaves its safe magnitude
// range — which keeps the stored values inside float64 range. Because the
// cadence depends only on the update count and the scale value, the dense
// and sparse-support update paths settle in lockstep and remain bit for
// bit identical. Read paths never settle (they fold the scale into their
// result instead), so reads stay non-mutating.
type Histogram struct {
	weights []float64
	counts  []float64
	scale   float64
	updates int // total number of purposeful updates applied
}

// settleEvery is the lazy-renormalization folding cadence. Between
// settles a bin grows by at most e^|step| per update; steps are learning
// rates well below 1, so 512 updates stay far inside float64 range.
const settleEvery = 512

// settle folds the pending scale into the stored weights. Called only
// from the update paths (on their deterministic cadence), never from
// readers.
func (h *Histogram) settle() {
	if h.scale == 1 {
		return
	}
	scaleAll(h.weights, h.scale)
	h.scale = 1
}

// maybeSettle applies the deterministic settle cadence after an update.
func (h *Histogram) maybeSettle() {
	if h.updates%settleEvery == 0 || h.scale < 1e-250 || h.scale > 1e250 {
		h.settle()
	}
}

// NewUniform returns the uniform distribution over a domain of the given
// size, with all counters zero.
func NewUniform(size int) *Histogram {
	if size <= 0 {
		panic(fmt.Sprintf("histogram: bad size %d", size))
	}
	h := &Histogram{
		weights: make([]float64, size),
		counts:  make([]float64, size),
		scale:   1,
	}
	fillFloat64(h.weights, 1.0/float64(size))
	return h
}

// fillFloat64 sets every element of s to v by doubling copies, so large
// fills run at memmove speed instead of one store per iteration.
func fillFloat64(s []float64, v float64) {
	if len(s) == 0 {
		return
	}
	s[0] = v
	for i := 1; i < len(s); i *= 2 {
		copy(s[i:], s[:i])
	}
}

// FromWeights builds a histogram from an arbitrary non-negative weight
// vector, normalizing it. At least one weight must be positive.
func FromWeights(w []float64) (*Histogram, error) {
	sum := 0.0
	for i, x := range w {
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("histogram: bad weight %g at bin %d", x, i)
		}
		sum += x
	}
	if sum <= 0 {
		return nil, fmt.Errorf("histogram: all weights zero")
	}
	h := &Histogram{weights: make([]float64, len(w)), counts: make([]float64, len(w)), scale: 1}
	for i, x := range w {
		h.weights[i] = x / sum
	}
	return h, nil
}

// Size returns the number of bins.
func (h *Histogram) Size() int { return len(h.weights) }

// Weight returns h(bin).
func (h *Histogram) Weight(bin int) float64 { return h.weights[bin] * h.scale }

// Weights returns the weight vector. With no renormalization pending it
// is the underlying storage (callers must not modify it); otherwise a
// scaled copy is materialized, so reads never mutate the histogram.
func (h *Histogram) Weights() []float64 {
	if h.scale == 1 {
		return h.weights
	}
	out := make([]float64, len(h.weights))
	for i, w := range h.weights {
		out[i] = w * h.scale
	}
	return out
}

// Count returns the purposeful-update counter of bin.
func (h *Histogram) Count(bin int) float64 { return h.counts[bin] }

// Updates returns the total number of purposeful updates applied to h,
// including those inherited through warm-start.
func (h *Histogram) Updates() int { return h.updates }

// Eval returns the histogram's estimate q(h) = q·h for a linear query.
//
// The reduction runs four interleaved accumulator lanes — the i-th
// support bin (ascending) feeds lane i mod 4, and the lanes combine as
// (s0+s1)+(s2+s3). Every histogram reduction (EvalSupport, the update
// mass loops) follows this exact spec, so the sparse kernels match the
// dense ones bit for bit while none serializes on FP add latency.
func (h *Histogram) Eval(q *query.Query) float64 {
	if q.Domain().Size() != len(h.weights) {
		panic(fmt.Sprintf("histogram: Eval got query over domain size %d for %d bins",
			q.Domain().Size(), len(h.weights)))
	}
	w := h.weights
	var s0, s1, s2, s3 float64
	i := 0
	q.ForEachBin(func(bin int) {
		switch i & 3 {
		case 0:
			s0 += w[bin]
		case 1:
			s1 += w[bin]
		case 2:
			s2 += w[bin]
		default:
			s3 += w[bin]
		}
		i++
	})
	return ((s0 + s1) + (s2 + s3)) * h.scale
}

// Update applies one multiplicative-weights step of signed size step
// (s = ±lr in Alg. 1) for query q, renormalizes, and increments the support
// bins' counters. A step of 0 is a no-op (the external-update rule emits 0
// when not confident; see Alg. 1 l.33).
func (h *Histogram) Update(q *query.Query, step float64) {
	if step == 0 {
		return
	}
	if math.IsNaN(step) || math.IsInf(step, 0) {
		panic(fmt.Sprintf("histogram: bad step %g", step))
	}
	factor := math.Exp(step)
	// Support mass before the update (in stored units); the new total is
	// 1 + (factor-1)·mass·scale, and the renormalization division folds
	// into the scale instead of sweeping the domain. The mass reduction
	// follows Eval's 4-lane spec, so it equals the Eval/EvalSupport
	// estimate of the same state bit for bit.
	w, c := h.weights, h.counts
	var m0, m1, m2, m3 float64
	i := 0
	q.ForEachBin(func(bin int) {
		switch i & 3 {
		case 0:
			m0 += w[bin]
		case 1:
			m1 += w[bin]
		case 2:
			m2 += w[bin]
		default:
			m3 += w[bin]
		}
		i++
		w[bin] *= factor
		c[bin]++
	})
	h.finishUpdate(factor, ((m0+m1)+(m2+m3))*h.scale)
}

// UpdateMass is Update with the support's histogram estimate precomputed:
// est must equal h.Eval(q) on the current state. The tree's split-phase
// Run snapshots the estimate at claim time and only applies updates when
// the node's epoch is untouched, so est is exactly the mass·scale product
// Update would derive — same bits — and the update loop becomes a pure
// scatter with no reduction over the support.
func (h *Histogram) UpdateMass(q *query.Query, step, est float64) {
	if step == 0 {
		return
	}
	if math.IsNaN(step) || math.IsInf(step, 0) {
		panic(fmt.Sprintf("histogram: bad step %g", step))
	}
	factor := math.Exp(step)
	w, c := h.weights, h.counts
	q.ForEachBin(func(bin int) {
		w[bin] *= factor
		c[bin]++
	})
	h.finishUpdate(factor, est)
}

// finishUpdate folds one update's renormalization into the scale. est is
// the pre-update histogram estimate of the support, i.e. mass·scale.
func (h *Histogram) finishUpdate(factor, est float64) {
	h.scale /= 1 + (factor-1)*est
	h.updates++
	h.maybeSettle()
}

// scaleAll multiplies every weight by inv. The multiplies are mutually
// independent, so the 8-way unroll changes no result bit — it only buys
// back the loop overhead on the O(domain) settle sweep.
func scaleAll(w []float64, inv float64) {
	i := 0
	for ; i+8 <= len(w); i += 8 {
		s := w[i : i+8 : i+8]
		s[0] *= inv
		s[1] *= inv
		s[2] *= inv
		s[3] *= inv
		s[4] *= inv
		s[5] *= inv
		s[6] *= inv
		s[7] *= inv
	}
	for ; i < len(w); i++ {
		w[i] *= inv
	}
}

// MinSupportCount returns the smallest per-bin counter among the bins in
// q's support — the quantity Turbo's per-bin readiness heuristic thresholds.
func (h *Histogram) MinSupportCount(q *query.Query) float64 {
	min := math.Inf(1)
	q.ForEachBin(func(bin int) {
		if h.counts[bin] < min {
			min = h.counts[bin]
		}
	})
	return min
}

// LeastUpdatedBins returns the support bins whose counter equals the support
// minimum. The heuristic penalizes only these bins after an SV failure, so a
// single untrained bin cannot set back queries that use trained bins only
// (§4.3 "Heuristic ISHISTOGRAMREADY").
func (h *Histogram) LeastUpdatedBins(q *query.Query) []int {
	min := h.MinSupportCount(q)
	var bins []int
	q.ForEachBin(func(bin int) {
		if h.counts[bin] == min {
			bins = append(bins, bin)
		}
	})
	return bins
}

// Clone returns a deep copy of h, counters included. Used by the warm-start
// leaf procedure (§4.5): a new leaf copies the previous partition's leaf.
func (h *Histogram) Clone() *Histogram {
	c := &Histogram{
		weights: append([]float64(nil), h.weights...),
		counts:  append([]float64(nil), h.counts...),
		scale:   h.scale,
		updates: h.updates,
	}
	return c
}

// Average returns the bin-wise average of the given histograms, used by the
// warm-start procedure for non-leaf tree nodes (§4.5). Counters and the
// update total are averaged too. All inputs must share a size.
func Average(hs ...*Histogram) (*Histogram, error) {
	if len(hs) == 0 {
		return nil, fmt.Errorf("histogram: Average of nothing")
	}
	size := hs[0].Size()
	out := &Histogram{
		weights: make([]float64, size),
		counts:  make([]float64, size),
		scale:   1,
	}
	totalUpdates := 0
	for _, h := range hs {
		if h.Size() != size {
			return nil, fmt.Errorf("histogram: Average size mismatch %d vs %d", h.Size(), size)
		}
		for i := range out.weights {
			out.weights[i] += h.weights[i] * h.scale
			out.counts[i] += h.counts[i]
		}
		totalUpdates += h.updates
	}
	inv := 1 / float64(len(hs))
	for i := range out.weights {
		out.weights[i] *= inv
		out.counts[i] *= inv
	}
	out.updates = totalUpdates / len(hs)
	return out, nil
}

// MinWeight returns the smallest bin weight. Warm-start convergence
// (Thm A.9) requires h0(x) ≥ 1/(λ|X|); λ = 1/(MinWeight·|X|).
func (h *Histogram) MinWeight() float64 {
	min := math.Inf(1)
	for _, w := range h.weights {
		if w < min {
			min = w
		}
	}
	return min * h.scale
}

// Lambda returns the warm-start prior-flatness parameter λ ≥ 1 such that
// h(x) ≥ 1/(λ|X|) for all x (Thm A.9).
func (h *Histogram) Lambda() float64 {
	mw := h.MinWeight()
	if mw <= 0 {
		return math.Inf(1)
	}
	return 1 / (mw * float64(len(h.weights)))
}

// RelativeEntropy computes D(p‖h) = Σ p(x)·ln(p(x)/h(x)), the potential
// tracked by the convergence proofs (Thm A.4). p must be a distribution of
// the same size; bins where p(x)=0 contribute zero.
func (h *Histogram) RelativeEntropy(p []float64) float64 {
	if len(p) != len(h.weights) {
		panic(fmt.Sprintf("histogram: RelativeEntropy got %d-vector for %d bins", len(p), len(h.weights)))
	}
	d := 0.0
	for i, px := range p {
		if px <= 0 {
			continue
		}
		d += px * math.Log(px/(h.weights[i]*h.scale))
	}
	return d
}

// Normalized reports whether the weights form a distribution within tol.
// It exists for tests and debug assertions.
func (h *Histogram) Normalized(tol float64) bool {
	if h.scale <= 0 || math.IsNaN(h.scale) || math.IsInf(h.scale, 0) {
		return false
	}
	sum := 0.0
	for _, w := range h.weights {
		if w < 0 || math.IsNaN(w) {
			return false
		}
		sum += w
	}
	return math.Abs(sum*h.scale-1) <= tol
}

// MemoryBytes estimates the resident size of the histogram state: two
// float64 vectors over the domain. Used by the §6.5 memory evaluation.
func (h *Histogram) MemoryBytes() int {
	return 16 * len(h.weights)
}

// State is the serializable form of a histogram, for persisting caching
// state the way the prototype keeps it in Redis (§5).
type State struct {
	Weights []float64
	Counts  []float64
	Updates int
}

// State exports a copy of the histogram's state. Pending renormalization
// is folded into the exported weights, so the serialized form is always
// the true distribution and round-trips through old snapshots.
func (h *Histogram) State() State {
	w := make([]float64, len(h.weights))
	for i, x := range h.weights {
		w[i] = x * h.scale
	}
	return State{
		Weights: w,
		Counts:  append([]float64(nil), h.counts...),
		Updates: h.updates,
	}
}

// FromState reconstructs a histogram, validating normalization.
func FromState(s State) (*Histogram, error) {
	if len(s.Weights) == 0 || len(s.Weights) != len(s.Counts) {
		return nil, fmt.Errorf("histogram: bad state (%d weights, %d counts)", len(s.Weights), len(s.Counts))
	}
	h := &Histogram{
		weights: append([]float64(nil), s.Weights...),
		counts:  append([]float64(nil), s.Counts...),
		scale:   1,
		updates: s.Updates,
	}
	if !h.Normalized(1e-6) {
		return nil, fmt.Errorf("histogram: state not normalized")
	}
	return h, nil
}
