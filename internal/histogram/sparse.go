// Sparse-support kernels: the histogram operations the tree's hot path
// uses, driven by a pre-resolved query.Support instead of a per-call
// ForEachBin walk. Every kernel iterates the support in the same
// ascending order as the dense methods, so floating-point reductions are
// performed in the identical order and the results match the dense
// oracle bit for bit — the property internal/histogram's tests pin. The
// dense methods stay as the property-tested oracle (and the tree keeps
// them reachable behind SetVectorized(false), mirroring the dataset
// engine's toggle).

package histogram

import (
	"fmt"
	"math"

	"repro/internal/query"
)

// checkSupport validates that s was resolved over a domain of h's size.
func (h *Histogram) checkSupport(s *query.Support) {
	if s.DomainSize() != len(h.weights) {
		panic(fmt.Sprintf("histogram: support resolved over %d bins, histogram has %d",
			s.DomainSize(), len(h.weights)))
	}
}

// EvalSupport returns q(h) = q·h for the query whose resolved support is
// s: a gather-sum over the resolved bin indices. The bins are ascending —
// the same order ForEachBin emits — and the reduction follows Eval's
// 4-lane spec (bin i feeds lane i mod 4, lanes combine (s0+s1)+(s2+s3)),
// so the result matches Eval on the originating query bit for bit, in
// O(|support|) with four concurrent add chains.
func (h *Histogram) EvalSupport(s *query.Support) float64 {
	h.checkSupport(s)
	w := h.weights
	bins := s.Bins()
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(bins); i += 4 {
		b := bins[i : i+4 : i+4]
		s0 += w[b[0]]
		s1 += w[b[1]]
		s2 += w[b[2]]
		s3 += w[b[3]]
	}
	switch len(bins) - i {
	case 3:
		s0 += w[bins[i]]
		s1 += w[bins[i+1]]
		s2 += w[bins[i+2]]
	case 2:
		s0 += w[bins[i]]
		s1 += w[bins[i+1]]
	case 1:
		s0 += w[bins[i]]
	}
	return ((s0 + s1) + (s2 + s3)) * h.scale
}

// UpdateSupport applies one multiplicative-weights step over a resolved
// support: multiply the support bins by e^step, bump their counters, and
// fold the renormalization into the lazy scale. The support-bin walk, the
// scale arithmetic, and the settle cadence follow the exact shape of
// Update, so the resulting weights are bit for bit what Update would have
// produced for the originating query — in O(|support|), not O(domain).
func (h *Histogram) UpdateSupport(s *query.Support, step float64) {
	if step == 0 {
		return
	}
	if math.IsNaN(step) || math.IsInf(step, 0) {
		panic(fmt.Sprintf("histogram: bad step %g", step))
	}
	h.checkSupport(s)
	factor := math.Exp(step)
	w, c := h.weights, h.counts
	bins := s.Bins()
	// The mass reduction follows Eval's 4-lane spec, mirroring Update.
	var m0, m1, m2, m3 float64
	i := 0
	for ; i+4 <= len(bins); i += 4 {
		b := bins[i : i+4 : i+4]
		m0 += w[b[0]]
		m1 += w[b[1]]
		m2 += w[b[2]]
		m3 += w[b[3]]
		w[b[0]] *= factor
		w[b[1]] *= factor
		w[b[2]] *= factor
		w[b[3]] *= factor
		c[b[0]]++
		c[b[1]]++
		c[b[2]]++
		c[b[3]]++
	}
	for j := i; j < len(bins); j++ {
		bin := bins[j]
		switch j & 3 {
		case 0:
			m0 += w[bin]
		case 1:
			m1 += w[bin]
		default:
			m2 += w[bin]
		}
		w[bin] *= factor
		c[bin]++
	}
	h.finishUpdate(factor, ((m0+m1)+(m2+m3))*h.scale)
}

// UpdateSupportMass is UpdateMass over a resolved support: the caller
// supplies the claim-time estimate (= EvalSupport on the unchanged
// state), so the loop multiplies and counts without re-reducing the
// support mass.
func (h *Histogram) UpdateSupportMass(s *query.Support, step, est float64) {
	if step == 0 {
		return
	}
	if math.IsNaN(step) || math.IsInf(step, 0) {
		panic(fmt.Sprintf("histogram: bad step %g", step))
	}
	h.checkSupport(s)
	factor := math.Exp(step)
	w, c := h.weights, h.counts
	bins := s.Bins()
	i := 0
	for ; i+4 <= len(bins); i += 4 {
		b := bins[i : i+4 : i+4]
		w[b[0]] *= factor
		w[b[1]] *= factor
		w[b[2]] *= factor
		w[b[3]] *= factor
		c[b[0]]++
		c[b[1]]++
		c[b[2]]++
		c[b[3]]++
	}
	for ; i < len(bins); i++ {
		w[bins[i]] *= factor
		c[bins[i]]++
	}
	h.finishUpdate(factor, est)
}

// MinSupportCountS is MinSupportCount over a resolved support.
func (h *Histogram) MinSupportCountS(s *query.Support) float64 {
	h.checkSupport(s)
	min := math.Inf(1)
	for _, bin := range s.Bins() {
		if h.counts[bin] < min {
			min = h.counts[bin]
		}
	}
	return min
}

// LeastUpdatedBinsSupport is LeastUpdatedBins over a resolved support:
// the support bins whose counter equals the support minimum.
func (h *Histogram) LeastUpdatedBinsSupport(s *query.Support) []int {
	min := h.MinSupportCountS(s)
	var out []int
	for _, bin := range s.Bins() {
		if h.counts[bin] == min {
			out = append(out, int(bin))
		}
	}
	return out
}
