package histogram

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/domain"
	"repro/internal/query"
)

func dom() *domain.Domain {
	return domain.MustNew(
		domain.Attribute{Name: "a", Card: 4},
		domain.Attribute{Name: "b", Card: 8},
	)
}

func TestNewUniform(t *testing.T) {
	h := NewUniform(32)
	if h.Size() != 32 {
		t.Fatalf("Size = %d", h.Size())
	}
	if !h.Normalized(1e-12) {
		t.Fatal("uniform histogram not normalized")
	}
	for i := 0; i < 32; i++ {
		if h.Weight(i) != 1.0/32 {
			t.Fatalf("Weight(%d) = %g", i, h.Weight(i))
		}
		if h.Count(i) != 0 {
			t.Fatalf("Count(%d) = %g, want 0", i, h.Count(i))
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewUniform(0) did not panic")
			}
		}()
		NewUniform(0)
	}()
}

func TestFromWeights(t *testing.T) {
	h, err := FromWeights([]float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if h.Weight(0) != 0.25 || h.Weight(1) != 0.75 {
		t.Fatalf("weights = %v", h.Weights())
	}
	for _, bad := range [][]float64{
		{0, 0},
		{-1, 2},
		{math.NaN(), 1},
		{math.Inf(1), 1},
	} {
		if _, err := FromWeights(bad); err == nil {
			t.Errorf("FromWeights(%v) succeeded", bad)
		}
	}
}

func TestUpdateMovesEstimateTowardTarget(t *testing.T) {
	d := dom()
	h := NewUniform(d.Size())
	q := query.MustNew(d, map[int][]int{0: {0}})
	before := h.Eval(q)
	h.Update(q, 0.5)
	after := h.Eval(q)
	if after <= before {
		t.Fatalf("positive update did not raise estimate: %g -> %g", before, after)
	}
	h.Update(q, -0.5)
	h.Update(q, -0.5)
	if h.Eval(q) >= after {
		t.Fatal("negative update did not lower estimate")
	}
}

func TestUpdateNormalizationQuick(t *testing.T) {
	d := dom()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := NewUniform(d.Size())
		for i := 0; i < 20; i++ {
			allowed := map[int][]int{}
			if r.Intn(2) == 0 {
				allowed[0] = []int{r.Intn(4)}
			}
			if r.Intn(2) == 0 {
				allowed[1] = []int{r.Intn(8), (r.Intn(7) + 1 + r.Intn(8)) % 8}
			}
			q, err := query.New(d, dedup(allowed))
			if err != nil {
				continue
			}
			step := (r.Float64() - 0.5) * 2
			if step == 0 {
				step = 0.1
			}
			h.Update(q, step)
			if !h.Normalized(1e-9) {
				return false
			}
			for bin := 0; bin < h.Size(); bin++ {
				if h.Weight(bin) <= 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func dedup(allowed map[int][]int) map[int][]int {
	out := make(map[int][]int)
	for k, vals := range allowed {
		seen := map[int]bool{}
		var v []int
		for _, x := range vals {
			if !seen[x] {
				seen[x] = true
				v = append(v, x)
			}
		}
		out[k] = v
	}
	return out
}

func TestUpdateMatchesNaiveMW(t *testing.T) {
	// The single-pass renormalization must agree with the textbook
	// two-pass exp-then-normalize implementation.
	d := dom()
	h := NewUniform(d.Size())
	q := query.MustNew(d, map[int][]int{1: {2, 3, 5}})
	step := 0.37

	naive := make([]float64, d.Size())
	for i := range naive {
		naive[i] = h.Weight(i)
	}
	q.ForEachBin(func(bin int) { naive[bin] *= math.Exp(step) })
	sum := 0.0
	for _, w := range naive {
		sum += w
	}
	for i := range naive {
		naive[i] /= sum
	}

	h.Update(q, step)
	for i := range naive {
		if math.Abs(h.Weight(i)-naive[i]) > 1e-12 {
			t.Fatalf("bin %d: fast %g vs naive %g", i, h.Weight(i), naive[i])
		}
	}
}

func TestUpdatePreservesDisjointRatios(t *testing.T) {
	// Bins outside the support keep their relative proportions.
	d := dom()
	h := NewUniform(d.Size())
	warm := query.MustNew(d, map[int][]int{0: {1}})
	h.Update(warm, 0.9)
	q := query.MustNew(d, map[int][]int{0: {0}})
	r0 := h.Weight(d.Encode([]int{1, 0})) / h.Weight(d.Encode([]int{2, 0}))
	h.Update(q, 0.5)
	r1 := h.Weight(d.Encode([]int{1, 0})) / h.Weight(d.Encode([]int{2, 0}))
	if math.Abs(r0-r1) > 1e-12 {
		t.Fatalf("ratio of untouched bins changed: %g -> %g", r0, r1)
	}
}

func TestUpdateZeroStepIsNoop(t *testing.T) {
	d := dom()
	h := NewUniform(d.Size())
	q := query.MustNew(d, map[int][]int{0: {0}})
	h.Update(q, 0)
	if h.Updates() != 0 {
		t.Fatal("zero step counted as update")
	}
	if h.Count(0) != 0 {
		t.Fatal("zero step bumped counters")
	}
}

func TestUpdatePanicsOnBadStep(t *testing.T) {
	d := dom()
	h := NewUniform(d.Size())
	q := query.MustNew(d, nil)
	for _, step := range []float64{math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Update(%v) did not panic", step)
				}
			}()
			h.Update(q, step)
		}()
	}
}

func TestCounters(t *testing.T) {
	d := dom()
	h := NewUniform(d.Size())
	q := query.MustNew(d, map[int][]int{0: {0}})
	h.Update(q, 0.1)
	h.Update(q, 0.1)
	q.ForEachBin(func(bin int) {
		if h.Count(bin) != 2 {
			t.Fatalf("Count(%d) = %g, want 2", bin, h.Count(bin))
		}
	})
	other := query.MustNew(d, map[int][]int{0: {1}})
	if h.MinSupportCount(other) != 0 {
		t.Fatal("untouched region should have min count 0")
	}
	if h.MinSupportCount(q) != 2 {
		t.Fatal("touched region min count should be 2")
	}
	if h.Updates() != 2 {
		t.Fatalf("Updates = %d", h.Updates())
	}
}

func TestLeastUpdatedBins(t *testing.T) {
	d := dom()
	h := NewUniform(d.Size())
	q1 := query.MustNew(d, map[int][]int{0: {0}, 1: {0}})
	h.Update(q1, 0.1)
	wide := query.MustNew(d, map[int][]int{0: {0}, 1: {0, 1}})
	least := h.LeastUpdatedBins(wide)
	// Only the (0,1) bin has count 0 within wide's support.
	if len(least) != 1 || least[0] != d.Encode([]int{0, 1}) {
		t.Fatalf("LeastUpdatedBins = %v", least)
	}
}

func TestCloneIndependence(t *testing.T) {
	d := dom()
	h := NewUniform(d.Size())
	q := query.MustNew(d, map[int][]int{0: {0}})
	h.Update(q, 0.3)
	c := h.Clone()
	if c.Updates() != h.Updates() {
		t.Fatal("clone lost update count")
	}
	c.Update(q, 0.3)
	if c.Eval(q) == h.Eval(q) {
		t.Fatal("clone shares state with original")
	}
}

func TestAverage(t *testing.T) {
	d := dom()
	a := NewUniform(d.Size())
	b := NewUniform(d.Size())
	q := query.MustNew(d, map[int][]int{0: {0}})
	a.Update(q, 1.0)
	avg, err := Average(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !avg.Normalized(1e-9) {
		t.Fatal("average not normalized")
	}
	for bin := 0; bin < d.Size(); bin++ {
		want := (a.Weight(bin) + b.Weight(bin)) / 2
		if math.Abs(avg.Weight(bin)-want) > 1e-12 {
			t.Fatalf("bin %d: %g, want %g", bin, avg.Weight(bin), want)
		}
	}
	// Counters average too (Fig. 5 shows fractional c).
	q.ForEachBin(func(bin int) {
		if avg.Count(bin) != 0.5 {
			t.Fatalf("avg Count = %g, want 0.5", avg.Count(bin))
		}
	})
	if _, err := Average(); err == nil {
		t.Error("Average() of nothing succeeded")
	}
	if _, err := Average(a, NewUniform(4)); err == nil {
		t.Error("Average of mismatched sizes succeeded")
	}
}

func TestLambdaAndMinWeight(t *testing.T) {
	h := NewUniform(16)
	if l := h.Lambda(); math.Abs(l-1) > 1e-12 {
		t.Fatalf("uniform Lambda = %g, want 1", l)
	}
	d := dom()
	h2 := NewUniform(d.Size())
	q := query.MustNew(d, map[int][]int{0: {0}})
	h2.Update(q, 2.0)
	if h2.Lambda() <= 1 {
		t.Fatalf("trained Lambda = %g, want > 1", h2.Lambda())
	}
	if h2.MinWeight() <= 0 {
		t.Fatal("MinWeight must stay positive under MW updates")
	}
}

func TestRelativeEntropy(t *testing.T) {
	h := NewUniform(4)
	uniform := []float64{0.25, 0.25, 0.25, 0.25}
	if d := h.RelativeEntropy(uniform); math.Abs(d) > 1e-12 {
		t.Fatalf("D(u||u) = %g, want 0", d)
	}
	spiky := []float64{1, 0, 0, 0}
	want := math.Log(4)
	if d := h.RelativeEntropy(spiky); math.Abs(d-want) > 1e-12 {
		t.Fatalf("D(point||uniform) = %g, want ln4 = %g", d, want)
	}
	// D is non-negative for any distribution pair (Gibbs).
	p := []float64{0.7, 0.1, 0.1, 0.1}
	if d := h.RelativeEntropy(p); d < 0 {
		t.Fatalf("relative entropy negative: %g", d)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("size mismatch did not panic")
			}
		}()
		h.RelativeEntropy([]float64{1})
	}()
}

func TestRelativeEntropyDecreasesUnderGoodUpdates(t *testing.T) {
	// The convergence potential D(p||h) must drop when updates move the
	// histogram toward p (the Thm A.4 argument, checked empirically).
	d := dom()
	h := NewUniform(d.Size())
	p := make([]float64, d.Size())
	p[0] = 0.5
	rest := 0.5 / float64(d.Size()-1)
	for i := 1; i < d.Size(); i++ {
		p[i] = rest
	}
	q := query.MustNew(d, map[int][]int{0: {0}, 1: {0}}) // selects bin 0 only
	before := h.RelativeEntropy(p)
	// True result 0.5 ≫ estimate 1/32: a positive update is warranted.
	h.Update(q, 0.2)
	after := h.RelativeEntropy(p)
	if after >= before {
		t.Fatalf("potential did not decrease: %g -> %g", before, after)
	}
}

func TestMemoryBytes(t *testing.T) {
	h := NewUniform(100)
	if h.MemoryBytes() != 1600 {
		t.Fatalf("MemoryBytes = %d, want 1600", h.MemoryBytes())
	}
}
