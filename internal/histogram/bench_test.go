package histogram

import (
	"fmt"
	"testing"

	"repro/internal/domain"
	"repro/internal/query"
)

// benchDomain builds a two-attribute domain of roughly the given size.
func benchDomain(size int) *domain.Domain {
	a := 1
	for a*a < size {
		a++
	}
	return domain.MustNew(
		domain.Attribute{Name: "x", Card: a},
		domain.Attribute{Name: "y", Card: (size + a - 1) / a},
	)
}

func BenchmarkUpdate(b *testing.B) {
	for _, size := range []int{128, 1200, 65536} {
		d := benchDomain(size)
		q := query.MustNew(d, map[int][]int{0: {0, 1}})
		h := NewUniform(d.Size())
		b.Run(fmt.Sprintf("N=%d", d.Size()), func(b *testing.B) {
			step := 0.1
			for i := 0; i < b.N; i++ {
				h.Update(q, step)
				step = -step // keep weights bounded
			}
		})
	}
}

func BenchmarkEval(b *testing.B) {
	for _, size := range []int{128, 1200, 65536} {
		d := benchDomain(size)
		q := query.MustNew(d, map[int][]int{0: {0, 1, 2}})
		h := NewUniform(d.Size())
		b.Run(fmt.Sprintf("N=%d", d.Size()), func(b *testing.B) {
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += h.Eval(q)
			}
			_ = sink
		})
	}
}

func BenchmarkClone(b *testing.B) {
	h := NewUniform(1200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = h.Clone()
	}
}

func BenchmarkRelativeEntropy(b *testing.B) {
	h := NewUniform(1200)
	p := make([]float64, 1200)
	for i := range p {
		p[i] = 1.0 / 1200
	}
	for i := 0; i < b.N; i++ {
		_ = h.RelativeEntropy(p)
	}
}
