package histogram

import (
	"math/rand"
	"testing"

	"repro/internal/domain"
	"repro/internal/query"
)

// randomQuery draws a conjunctive predicate over d: each attribute is
// restricted to a random proper subset with probability 1/2.
func randomQuery(t *testing.T, d *domain.Domain, rng *rand.Rand) *query.Query {
	t.Helper()
	allowed := map[int][]int{}
	for a := 0; a < d.NumAttrs(); a++ {
		if rng.Intn(2) == 1 {
			continue
		}
		card := d.Card(a)
		k := 1 + rng.Intn(card)
		if k == card && card > 1 {
			k--
		}
		allowed[a] = rng.Perm(card)[:k]
	}
	if len(allowed) == 0 {
		a := rng.Intn(d.NumAttrs())
		allowed[a] = []int{rng.Intn(d.Card(a))}
	}
	q, err := query.New(d, allowed)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func sparseDoms() []*domain.Domain {
	return []*domain.Domain{
		domain.MustNew(domain.Attribute{Name: "a", Card: 7}),
		domain.MustNew(
			domain.Attribute{Name: "a", Card: 4},
			domain.Attribute{Name: "b", Card: 8},
		),
		domain.MustNew(
			domain.Attribute{Name: "a", Card: 8},
			domain.Attribute{Name: "b", Card: 8},
			domain.Attribute{Name: "c", Card: 8},
			domain.Attribute{Name: "tail", Card: 2},
		),
	}
}

// TestEvalSupportMatchesDenseBitForBit: the masked dot product must
// reproduce the recursive ForEachBin sum exactly — same bins, same
// order, same floating-point result.
func TestEvalSupportMatchesDenseBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var sup query.Support
	for _, d := range sparseDoms() {
		h := NewUniform(d.Size())
		// Rough up the weights so sums are order-sensitive.
		for i := 0; i < 200; i++ {
			h.Update(randomQuery(t, d, rng), 0.05+0.2*rng.Float64())
		}
		for i := 0; i < 200; i++ {
			q := randomQuery(t, d, rng)
			q.Resolve(&sup)
			if got, want := sup.Len(), q.SupportSize(); got != want {
				t.Fatalf("domain %d: support len %d, want %d", d.Size(), got, want)
			}
			if got, want := h.EvalSupport(&sup), h.Eval(q); got != want {
				t.Fatalf("domain %d: EvalSupport = %v, Eval = %v (must be bit-identical)",
					d.Size(), got, want)
			}
		}
	}
}

// TestUpdateSupportMatchesDenseBitForBit: after every sparse update the
// histogram must be bitwise identical to a twin driven by the dense
// oracle with the same queries and steps.
func TestUpdateSupportMatchesDenseBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var sup query.Support
	for _, d := range sparseDoms() {
		hs, hd := NewUniform(d.Size()), NewUniform(d.Size())
		for i := 0; i < 500; i++ {
			q := randomQuery(t, d, rng)
			step := (rng.Float64() - 0.5) * 0.4
			if i%17 == 0 {
				step = 0 // a zero step must stay a no-op on both paths
			}
			q.Resolve(&sup)
			hs.UpdateSupport(&sup, step)
			hd.Update(q, step)
			if hs.Updates() != hd.Updates() {
				t.Fatalf("update %d: counters diverged (%d vs %d)", i, hs.Updates(), hd.Updates())
			}
		}
		for b := 0; b < d.Size(); b++ {
			if hs.Weight(b) != hd.Weight(b) {
				t.Fatalf("bin %d: weight %v vs dense %v (must be bit-identical)", b, hs.Weight(b), hd.Weight(b))
			}
			if hs.Count(b) != hd.Count(b) {
				t.Fatalf("bin %d: count %v vs dense %v", b, hs.Count(b), hd.Count(b))
			}
		}
	}
}

// TestMixedUpdatesStayNormalized: 10k interleaved sparse/dense updates
// keep the renormalization invariant and never desynchronize the two
// kernel families on one histogram.
func TestMixedUpdatesStayNormalized(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	d := sparseDoms()[2]
	h := NewUniform(d.Size())
	twin := NewUniform(d.Size())
	var sup query.Support
	for i := 0; i < 10000; i++ {
		q := randomQuery(t, d, rng)
		step := (rng.Float64() - 0.5) * 0.5
		twin.Update(q, step)
		if i%2 == 0 {
			q.Resolve(&sup)
			h.UpdateSupport(&sup, step)
		} else {
			h.Update(q, step)
		}
	}
	if !h.Normalized(1e-9) {
		t.Fatal("histogram left the simplex after 10k mixed updates")
	}
	for b := 0; b < d.Size(); b++ {
		if h.Weight(b) != twin.Weight(b) {
			t.Fatalf("bin %d: mixed-kernel weight %v vs dense twin %v", b, h.Weight(b), twin.Weight(b))
		}
	}
}

// TestSupportCountKernelsMatchDense: MinSupportCountS and
// LeastUpdatedBinsSupport agree with their dense counterparts.
func TestSupportCountKernelsMatchDense(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	d := sparseDoms()[1]
	h := NewUniform(d.Size())
	var sup query.Support
	for i := 0; i < 300; i++ {
		q := randomQuery(t, d, rng)
		q.Resolve(&sup)
		if got, want := h.MinSupportCountS(&sup), h.MinSupportCount(q); got != want {
			t.Fatalf("iter %d: MinSupportCountS = %v, dense %v", i, got, want)
		}
		gotBins, wantBins := h.LeastUpdatedBinsSupport(&sup), h.LeastUpdatedBins(q)
		if len(gotBins) != len(wantBins) {
			t.Fatalf("iter %d: least-updated sets differ in size: %v vs %v", i, gotBins, wantBins)
		}
		for j := range gotBins {
			if gotBins[j] != wantBins[j] {
				t.Fatalf("iter %d: least-updated sets differ: %v vs %v", i, gotBins, wantBins)
			}
		}
		h.Update(q, 0.1)
	}
}

// TestUpdateSupportSizeMismatchPanics: a support resolved over another
// domain must be rejected, not silently misapplied.
func TestUpdateSupportSizeMismatchPanics(t *testing.T) {
	ds := sparseDoms()
	q := query.MustNew(ds[0], map[int][]int{0: {1, 2}})
	var sup query.Support
	q.Resolve(&sup)
	h := NewUniform(ds[1].Size())
	defer func() {
		if recover() == nil {
			t.Fatal("size-mismatched support did not panic")
		}
	}()
	h.EvalSupport(&sup)
}
