package heuristic

import (
	"strings"
	"testing"

	"repro/internal/domain"
	"repro/internal/histogram"
	"repro/internal/query"
)

func dom() *domain.Domain {
	return domain.MustNew(
		domain.Attribute{Name: "a", Card: 2},
		domain.Attribute{Name: "b", Card: 4},
	)
}

// train applies n purposeful updates for q.
func train(h *histogram.Histogram, q *query.Query, n int) {
	for i := 0; i < n; i++ {
		h.Update(q, 0.01)
	}
}

func TestAdaptivePerBinReadiness(t *testing.T) {
	d := dom()
	h := histogram.NewUniform(d.Size())
	heur := NewAdaptivePerBin(3, 1)
	q := query.MustNew(d, map[int][]int{0: {0}})
	if heur.IsReady(h, q) {
		t.Fatal("untrained histogram declared ready")
	}
	train(h, q, 3)
	if !heur.IsReady(h, q) {
		t.Fatal("histogram with C0 updates per bin not ready")
	}
	// A query touching one cold bin must not be ready.
	wide := query.MustNew(d, nil)
	if heur.IsReady(h, wide) {
		t.Fatal("query over cold bins declared ready")
	}
}

func TestAdaptivePerBinPenalizeRaisesOnlyLeastUpdated(t *testing.T) {
	d := dom()
	h := histogram.NewUniform(d.Size())
	heur := NewAdaptivePerBin(1, 2)
	hot := query.MustNew(d, map[int][]int{0: {0}, 1: {0}})  // one bin
	cold := query.MustNew(d, map[int][]int{0: {0}, 1: {1}}) // another
	train(h, hot, 5)
	train(h, cold, 1)
	both := query.MustNew(d, map[int][]int{0: {0}, 1: {0, 1}})
	heur.Penalize(h, both)
	hotBin := d.Encode([]int{0, 0})
	coldBin := d.Encode([]int{0, 1})
	if heur.Threshold(hotBin) != 1 {
		t.Fatalf("hot bin threshold = %g, want unchanged 1", heur.Threshold(hotBin))
	}
	if heur.Threshold(coldBin) != 3 {
		t.Fatalf("cold bin threshold = %g, want 1+S0 = 3", heur.Threshold(coldBin))
	}
}

func TestAdaptivePerBinBecomesConservative(t *testing.T) {
	d := dom()
	h := histogram.NewUniform(d.Size())
	heur := NewAdaptivePerBin(1, 1)
	q := query.MustNew(d, map[int][]int{0: {0}})
	train(h, q, 1)
	if !heur.IsReady(h, q) {
		t.Fatal("should be ready at C0=1 with 1 update")
	}
	heur.Penalize(h, q) // thresholds of support bins → 2
	if heur.IsReady(h, q) {
		t.Fatal("still ready after penalty")
	}
	train(h, q, 1)
	if !heur.IsReady(h, q) {
		t.Fatal("not ready after reaching raised threshold")
	}
}

func TestAdaptivePerBinCloneState(t *testing.T) {
	d := dom()
	h := histogram.NewUniform(d.Size())
	heur := NewAdaptivePerBin(1, 5)
	q := query.MustNew(d, map[int][]int{0: {0}})
	train(h, q, 1)
	heur.Penalize(h, q)
	clone := heur.CloneState().(*AdaptivePerBin)
	bin := d.Encode([]int{0, 0})
	if clone.Threshold(bin) != heur.Threshold(bin) {
		t.Fatal("clone lost thresholds")
	}
	clone.Penalize(h, q)
	if clone.Threshold(bin) == heur.Threshold(bin) {
		t.Fatal("clone shares threshold storage")
	}
	// Cloning an untouched heuristic keeps lazy thresholds.
	fresh := NewAdaptivePerBin(2, 1).CloneState().(*AdaptivePerBin)
	if fresh.Threshold(0) != 2 {
		t.Fatal("fresh clone lost C0")
	}
}

func TestAdaptivePerBinAverageState(t *testing.T) {
	d := dom()
	h := histogram.NewUniform(d.Size())
	a := NewAdaptivePerBin(1, 2)
	b := NewAdaptivePerBin(1, 2)
	q := query.MustNew(d, map[int][]int{0: {0}})
	train(h, q, 1)
	a.Penalize(h, q) // support bins → 3
	dst := NewAdaptivePerBin(1, 2)
	if err := dst.AverageState([]Heuristic{a, b}); err != nil {
		t.Fatal(err)
	}
	bin := d.Encode([]int{0, 0})
	if dst.Threshold(bin) != 2 { // (3+1)/2
		t.Fatalf("averaged threshold = %g, want 2", dst.Threshold(bin))
	}
	if err := dst.AverageState(nil); err == nil {
		t.Error("AverageState of nothing succeeded")
	}
	if err := dst.AverageState([]Heuristic{NewStaticGlobal(1)}); err == nil {
		t.Error("AverageState across designs succeeded")
	}
	// All-untouched parents: thresholds stay at C0.
	dst2 := NewAdaptivePerBin(7, 1)
	if err := dst2.AverageState([]Heuristic{NewAdaptivePerBin(1, 1), NewAdaptivePerBin(1, 1)}); err != nil {
		t.Fatal(err)
	}
	if dst2.Threshold(3) != 7 {
		t.Fatalf("untouched average threshold = %g, want C0=7", dst2.Threshold(3))
	}
}

func TestAdaptivePerBinPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative C0 did not panic")
			}
		}()
		NewAdaptivePerBin(-1, 1)
	}()
	// Histogram size change mid-stream is a programming error. Readiness
	// probes never materialize the thresholds (nil means all-C0), so the
	// materializing penalty path seeds the size here.
	heur := NewAdaptivePerBin(1, 1)
	d := dom()
	h := histogram.NewUniform(d.Size())
	q := query.MustNew(d, nil)
	heur.IsReady(h, q)
	heur.Penalize(h, q)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("size change did not panic")
			}
		}()
		heur.ensure(4)
	}()
}

func TestStaticPerBin(t *testing.T) {
	d := dom()
	h := histogram.NewUniform(d.Size())
	heur := NewStaticPerBin(2)
	q := query.MustNew(d, map[int][]int{0: {1}})
	if heur.IsReady(h, q) {
		t.Fatal("cold static-per-bin ready")
	}
	train(h, q, 2)
	if !heur.IsReady(h, q) {
		t.Fatal("trained static-per-bin not ready")
	}
	heur.Penalize(h, q) // no-op
	if !heur.IsReady(h, q) {
		t.Fatal("static design became adaptive")
	}
}

func TestGlobalDesigns(t *testing.T) {
	d := dom()
	h := histogram.NewUniform(d.Size())
	q1 := query.MustNew(d, map[int][]int{0: {0}})
	q2 := query.MustNew(d, map[int][]int{0: {1}})

	ag := NewAdaptiveGlobal(2, 3)
	if ag.IsReady(h, q2) {
		t.Fatal("cold adaptive-global ready")
	}
	train(h, q1, 2) // global count reaches 2, even though q2's bins are cold
	if !ag.IsReady(h, q2) {
		t.Fatal("adaptive-global ignores per-bin state by design; should be ready")
	}
	ag.Penalize(h, q2) // threshold → 5
	if ag.IsReady(h, q2) {
		t.Fatal("adaptive-global did not adapt")
	}

	sg := NewStaticGlobal(2)
	if !sg.IsReady(h, q2) {
		t.Fatal("static-global with enough updates not ready")
	}
	sg.Penalize(h, q2)
	if !sg.IsReady(h, q2) {
		t.Fatal("static-global adapted")
	}
}

func TestTrivialDesigns(t *testing.T) {
	d := dom()
	h := histogram.NewUniform(d.Size())
	q := query.MustNew(d, nil)
	if !(AlwaysReady{}).IsReady(h, q) {
		t.Fatal("AlwaysReady not ready")
	}
	if (NeverReady{}).IsReady(h, q) {
		t.Fatal("NeverReady ready")
	}
	AlwaysReady{}.Penalize(h, q)
	NeverReady{}.Penalize(h, q)
}

func TestCutoff(t *testing.T) {
	d := dom()
	h := histogram.NewUniform(d.Size())
	q := query.MustNew(d, map[int][]int{0: {0}})
	c := NewCutoff(NeverReady{}, 3)
	for i := 0; i < 3; i++ {
		if c.IsReady(h, q) {
			t.Fatalf("cutoff fired early at %d", i)
		}
	}
	if !c.IsReady(h, q) {
		t.Fatal("cutoff did not force readiness after k bypasses")
	}
	if c.Bypassed() != 3 {
		t.Fatalf("Bypassed = %d", c.Bypassed())
	}
	// k ≤ 0 disables the cutoff.
	c2 := NewCutoff(NeverReady{}, 0)
	for i := 0; i < 10; i++ {
		if c2.IsReady(h, q) {
			t.Fatal("disabled cutoff forced readiness")
		}
	}
	// Penalize forwards to the inner design.
	inner := NewAdaptiveGlobal(0, 1)
	c3 := NewCutoff(inner, 5)
	c3.Penalize(h, q)
	if inner.IsReady(h, q) {
		t.Fatal("penalty did not reach inner heuristic")
	}
}

func TestNames(t *testing.T) {
	names := []string{
		NewAdaptivePerBin(1, 2).Name(),
		NewStaticPerBin(3).Name(),
		NewAdaptiveGlobal(1, 2).Name(),
		NewStaticGlobal(4).Name(),
		AlwaysReady{}.Name(),
		NeverReady{}.Name(),
		NewCutoff(AlwaysReady{}, 7).Name(),
	}
	seen := map[string]bool{}
	for _, n := range names {
		if n == "" || seen[n] {
			t.Fatalf("bad or duplicate name %q", n)
		}
		seen[n] = true
	}
	if !strings.Contains(names[6], "k=7") {
		t.Fatalf("cutoff name %q missing parameter", names[6])
	}
}
