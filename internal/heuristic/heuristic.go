// Package heuristic implements the ISHISTOGRAMREADY designs of §4.3: the
// free (no raw data access) predicate PMW-Bypass consults to decide whether
// the histogram is likely ready to answer a query within α, or whether the
// bypass branch should run the query directly through Laplace.
//
// Turbo's production design is the adaptive per-bin threshold: each bin
// starts with threshold C0, the heuristic declares a query ready when every
// support bin has received at least its threshold's worth of purposeful
// updates, and every time the heuristic errs (SV test fails after it said
// "ready") the thresholds of the least-updated support bins grow by S0.
//
// The package also implements the three ablation alternatives evaluated in
// §6.2 Question 4 — non-adaptive per-bin, adaptive global, and static
// global — plus the trivial AlwaysReady (vanilla PMW) and NeverReady
// (always bypass) policies, and the §A.5 cutoff wrapper that bounds how
// many queries can take the bypass branch.
package heuristic

import (
	"fmt"

	"repro/internal/histogram"
	"repro/internal/query"
)

// Heuristic decides readiness from histogram state alone; it never sees the
// raw data, so consulting it is free in privacy terms.
type Heuristic interface {
	// IsReady reports whether the histogram is likely to answer q within
	// the accuracy target.
	IsReady(h *histogram.Histogram, q *query.Query) bool
	// Penalize records that IsReady returned true but the SV test failed
	// for q, so the heuristic becomes more conservative.
	Penalize(h *histogram.Histogram, q *query.Query)
	// Name identifies the design in experiment output.
	Name() string
}

// Factory builds a fresh heuristic instance; the tree-structured cache uses
// one instance per node.
type Factory func() Heuristic

// SupportAware heuristics additionally accept a pre-resolved support set,
// so a caller evaluating one predicate against many histograms (the tree's
// split loop) resolves the support once instead of re-walking ForEachBin
// per node. Implementations must make the exact decision — and the exact
// state mutations — their dense methods make for the originating query.
type SupportAware interface {
	Heuristic
	// IsReadySupport is IsReady over a resolved support.
	IsReadySupport(h *histogram.Histogram, s *query.Support) bool
	// PenalizeSupport is Penalize over a resolved support.
	PenalizeSupport(h *histogram.Histogram, s *query.Support)
}

// WarmStartable heuristics can transfer their learned thresholds when a new
// tree node is warm-started from existing ones (§4.5).
type WarmStartable interface {
	Heuristic
	// CloneState returns a copy carrying the learned thresholds.
	CloneState() Heuristic
	// AverageState replaces this heuristic's thresholds with the mean of
	// the others', used when an internal node warm-starts from children.
	AverageState(others []Heuristic) error
}

// AdaptivePerBin is Turbo's heuristic: per-bin adaptive thresholds with
// initial value C0 and additive penalty step S0.
type AdaptivePerBin struct {
	c0, s0     float64
	thresholds []float64 // lazily sized to the histogram's bin count
}

// NewAdaptivePerBin returns the Turbo heuristic with the given C0 and S0.
func NewAdaptivePerBin(c0, s0 float64) *AdaptivePerBin {
	if c0 < 0 || s0 < 0 {
		panic(fmt.Sprintf("heuristic: bad parameters C0=%g S0=%g", c0, s0))
	}
	return &AdaptivePerBin{c0: c0, s0: s0}
}

// ensure materializes the per-bin threshold vector. A nil vector means
// every bin still sits at C0 — the readiness probes compare against the
// scalar directly, so a node that has never been penalized pays neither
// the O(domain) fill nor a per-probe threshold gather. Only the penalty
// paths, which must raise individual bins, materialize.
func (a *AdaptivePerBin) ensure(size int) {
	if a.thresholds == nil {
		a.thresholds = make([]float64, size)
		if size > 0 {
			// Doubling copies fill at memmove speed.
			a.thresholds[0] = a.c0
			for i := 1; i < size; i *= 2 {
				copy(a.thresholds[i:], a.thresholds[:i])
			}
		}
		return
	}
	if len(a.thresholds) != size {
		panic(fmt.Sprintf("heuristic: histogram size changed %d -> %d", len(a.thresholds), size))
	}
}

// IsReady requires every support bin's update counter to meet its own
// threshold.
func (a *AdaptivePerBin) IsReady(h *histogram.Histogram, q *query.Query) bool {
	ready := true
	if a.thresholds == nil {
		c0 := a.c0
		q.ForEachBin(func(bin int) {
			if h.Count(bin) < c0 {
				ready = false
			}
		})
		return ready
	}
	a.ensure(h.Size())
	q.ForEachBin(func(bin int) {
		if h.Count(bin) < a.thresholds[bin] {
			ready = false
		}
	})
	return ready
}

// Penalize raises the thresholds of q's least-updated support bins by S0,
// so one cold bin cannot penalize queries that only touch trained bins.
func (a *AdaptivePerBin) Penalize(h *histogram.Histogram, q *query.Query) {
	a.ensure(h.Size())
	for _, bin := range h.LeastUpdatedBins(q) {
		a.thresholds[bin] += a.s0
	}
}

// IsReadySupport implements SupportAware with the same decision IsReady
// makes for the originating query.
func (a *AdaptivePerBin) IsReadySupport(h *histogram.Histogram, s *query.Support) bool {
	if a.thresholds == nil {
		c0 := a.c0
		for _, bin := range s.Bins() {
			if h.Count(int(bin)) < c0 {
				return false
			}
		}
		return true
	}
	a.ensure(h.Size())
	for _, bin := range s.Bins() {
		if h.Count(int(bin)) < a.thresholds[bin] {
			return false
		}
	}
	return true
}

// PenalizeSupport implements SupportAware with the same threshold bumps
// Penalize applies.
func (a *AdaptivePerBin) PenalizeSupport(h *histogram.Histogram, s *query.Support) {
	a.ensure(h.Size())
	for _, bin := range h.LeastUpdatedBinsSupport(s) {
		a.thresholds[bin] += a.s0
	}
}

// Name implements Heuristic.
func (a *AdaptivePerBin) Name() string {
	return fmt.Sprintf("adaptive-per-bin(C0=%g,S0=%g)", a.c0, a.s0)
}

// Threshold exposes a bin's current threshold for tests and diagnostics.
func (a *AdaptivePerBin) Threshold(bin int) float64 {
	if a.thresholds == nil {
		return a.c0
	}
	return a.thresholds[bin]
}

// State exports the heuristic's serializable state for persistence.
func (a *AdaptivePerBin) State() (c0, s0 float64, thresholds []float64) {
	return a.c0, a.s0, append([]float64(nil), a.thresholds...)
}

// SetThresholds restores previously exported thresholds; nil resets to
// the lazy C0 initialization.
func (a *AdaptivePerBin) SetThresholds(thresholds []float64) {
	if len(thresholds) == 0 {
		a.thresholds = nil
		return
	}
	a.thresholds = append([]float64(nil), thresholds...)
}

// CloneState implements WarmStartable.
func (a *AdaptivePerBin) CloneState() Heuristic {
	c := NewAdaptivePerBin(a.c0, a.s0)
	if a.thresholds != nil {
		c.thresholds = append([]float64(nil), a.thresholds...)
	}
	return c
}

// AverageState implements WarmStartable: thresholds become the mean of the
// given heuristics' thresholds (which must all be AdaptivePerBin).
func (a *AdaptivePerBin) AverageState(others []Heuristic) error {
	if len(others) == 0 {
		return fmt.Errorf("heuristic: AverageState of nothing")
	}
	var size int
	for _, o := range others {
		p, ok := o.(*AdaptivePerBin)
		if !ok {
			return fmt.Errorf("heuristic: AverageState across designs (%s vs %s)", a.Name(), o.Name())
		}
		if p.thresholds != nil {
			size = len(p.thresholds)
		}
	}
	if size == 0 {
		a.thresholds = nil // all parents untouched: stay at C0
		return nil
	}
	sum := make([]float64, size)
	for _, o := range others {
		p := o.(*AdaptivePerBin)
		for i := range sum {
			if p.thresholds == nil {
				sum[i] += p.c0
			} else {
				sum[i] += p.thresholds[i]
			}
		}
	}
	inv := 1 / float64(len(others))
	for i := range sum {
		sum[i] *= inv
	}
	a.thresholds = sum
	return nil
}

// StaticPerBin is the non-adaptive per-bin ablation: fixed threshold C0 on
// every bin, no penalties.
type StaticPerBin struct {
	c0 float64
}

// NewStaticPerBin returns the non-adaptive per-bin design.
func NewStaticPerBin(c0 float64) *StaticPerBin { return &StaticPerBin{c0: c0} }

// IsReady requires every support bin counter to reach C0.
func (s *StaticPerBin) IsReady(h *histogram.Histogram, q *query.Query) bool {
	return h.MinSupportCount(q) >= s.c0
}

// Penalize is a no-op: the design is not adaptive.
func (s *StaticPerBin) Penalize(*histogram.Histogram, *query.Query) {}

// IsReadySupport implements SupportAware.
func (s *StaticPerBin) IsReadySupport(h *histogram.Histogram, sup *query.Support) bool {
	return h.MinSupportCountS(sup) >= s.c0
}

// PenalizeSupport is a no-op: the design is not adaptive.
func (s *StaticPerBin) PenalizeSupport(*histogram.Histogram, *query.Support) {}

// Name implements Heuristic.
func (s *StaticPerBin) Name() string { return fmt.Sprintf("static-per-bin(C0=%g)", s.c0) }

// AdaptiveGlobal is the coarse-grained ablation with adaptivity: one
// histogram-level threshold on the total update count, raised by S0 on each
// error.
type AdaptiveGlobal struct {
	c, s0 float64
}

// NewAdaptiveGlobal returns the adaptive global-count design.
func NewAdaptiveGlobal(c0, s0 float64) *AdaptiveGlobal { return &AdaptiveGlobal{c: c0, s0: s0} }

// IsReady compares the histogram's total update count against the
// threshold.
func (g *AdaptiveGlobal) IsReady(h *histogram.Histogram, _ *query.Query) bool {
	return float64(h.Updates()) >= g.c
}

// Penalize raises the global threshold.
func (g *AdaptiveGlobal) Penalize(*histogram.Histogram, *query.Query) { g.c += g.s0 }

// Name implements Heuristic.
func (g *AdaptiveGlobal) Name() string { return fmt.Sprintf("adaptive-global(C=%g,S0=%g)", g.c, g.s0) }

// StaticGlobal is the fully coarse ablation: fixed histogram-level update
// count threshold.
type StaticGlobal struct {
	c0 float64
}

// NewStaticGlobal returns the static global-count design.
func NewStaticGlobal(c0 float64) *StaticGlobal { return &StaticGlobal{c0: c0} }

// IsReady compares total updates against C0.
func (g *StaticGlobal) IsReady(h *histogram.Histogram, _ *query.Query) bool {
	return float64(h.Updates()) >= g.c0
}

// Penalize is a no-op.
func (g *StaticGlobal) Penalize(*histogram.Histogram, *query.Query) {}

// Name implements Heuristic.
func (g *StaticGlobal) Name() string { return fmt.Sprintf("static-global(C0=%g)", g.c0) }

// AlwaysReady turns PMW-Bypass into vanilla PMW: every query goes through
// the SV test.
type AlwaysReady struct{}

// IsReady always reports true.
func (AlwaysReady) IsReady(*histogram.Histogram, *query.Query) bool { return true }

// Penalize is a no-op.
func (AlwaysReady) Penalize(*histogram.Histogram, *query.Query) {}

// Name implements Heuristic.
func (AlwaysReady) Name() string { return "always-ready(vanilla-pmw)" }

// NeverReady sends every query through the bypass branch: direct Laplace
// with external updates only. Useful as a degenerate baseline in tests.
type NeverReady struct{}

// IsReady always reports false.
func (NeverReady) IsReady(*histogram.Histogram, *query.Query) bool { return false }

// Penalize is a no-op.
func (NeverReady) Penalize(*histogram.Histogram, *query.Query) {}

// Name implements Heuristic.
func (NeverReady) Name() string { return "never-ready(direct-laplace)" }

// Cutoff wraps another heuristic and forces readiness after the wrapped
// design has sent k queries through the bypass branch, implementing the
// §A.5 bound on adversarial budget drain: after the cutoff, every
// budget-consuming query also yields a histogram update, so Thm A.4 bounds
// total consumption.
type Cutoff struct {
	inner    Heuristic
	k        int
	bypassed int
}

// NewCutoff wraps inner with a bypass budget of k queries; k ≤ 0 disables
// the wrapper's effect.
func NewCutoff(inner Heuristic, k int) *Cutoff { return &Cutoff{inner: inner, k: k} }

// IsReady defers to the wrapped heuristic until the cutoff is reached.
func (c *Cutoff) IsReady(h *histogram.Histogram, q *query.Query) bool {
	if c.k > 0 && c.bypassed >= c.k {
		return true
	}
	ready := c.inner.IsReady(h, q)
	if !ready {
		c.bypassed++
	}
	return ready
}

// Penalize defers to the wrapped heuristic.
func (c *Cutoff) Penalize(h *histogram.Histogram, q *query.Query) { c.inner.Penalize(h, q) }

// Name implements Heuristic.
func (c *Cutoff) Name() string { return fmt.Sprintf("cutoff(%s,k=%d)", c.inner.Name(), c.k) }

// Bypassed returns how many queries have taken the bypass branch so far.
func (c *Cutoff) Bypassed() int { return c.bypassed }
