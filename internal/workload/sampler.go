// Query sampling and window generation (§6.1 "Workload generation").

package workload

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/noise"
	"repro/internal/query"
)

// Zipf samples queries from a pool with probability ∝ rank^(-k), the
// standard skewness model of the caching literature; k = 0 is uniform.
type Zipf struct {
	pool []*query.Query
	cdf  []float64
	rng  *noise.Rng
	k    float64
}

// NewZipf builds a sampler over pool with skew k ≥ 0. The pool order
// defines the rank of each query (rank 1 is hottest).
func NewZipf(pool []*query.Query, k float64, rng *noise.Rng) (*Zipf, error) {
	if len(pool) == 0 {
		return nil, fmt.Errorf("workload: empty query pool")
	}
	if k < 0 {
		return nil, fmt.Errorf("workload: negative zipf parameter %g", k)
	}
	z := &Zipf{pool: pool, cdf: make([]float64, len(pool)), rng: rng, k: k}
	sum := 0.0
	for i := range pool {
		sum += math.Pow(float64(i+1), -k)
		z.cdf[i] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
	return z, nil
}

// Sample draws one query (with replacement).
func (z *Zipf) Sample() *query.Query {
	u := z.rng.Float64()
	i := sort.SearchFloat64s(z.cdf, u)
	if i >= len(z.pool) {
		i = len(z.pool) - 1
	}
	return z.pool[i]
}

// SampleN draws n queries.
func (z *Zipf) SampleN(n int) []*query.Query {
	out := make([]*query.Query, n)
	for i := range out {
		out[i] = z.Sample()
	}
	return out
}

// PoolSize returns the number of distinct queries.
func (z *Zipf) PoolSize() int { return len(z.pool) }

// Shuffle returns a permuted copy of a pool so that Zipf rank is decoupled
// from generation order.
func Shuffle(pool []*query.Query, rng *noise.Rng) []*query.Query {
	out := make([]*query.Query, len(pool))
	for i, j := range rng.Perm(len(pool)) {
		out[i] = pool[j]
	}
	return out
}

// Windows generates the partition windows of the partitioned use cases.
type Windows struct {
	rng *noise.Rng
}

// NewWindows builds a window generator.
func NewWindows(rng *noise.Rng) *Windows { return &Windows{rng: rng} }

// UniformContiguous draws a random contiguous window of 1..partitions
// partitions (Fig. 10: "random contiguous window of 1 to 50 partitions").
func (w *Windows) UniformContiguous(partitions int) (start, end int) {
	size := 1 + w.rng.IntN(partitions)
	start = w.rng.IntN(partitions - size + 1)
	return start, start + size - 1
}

// GaussianSize draws a contiguous window whose size is Gaussian around
// mean with the given std-dev, clipped to [1, partitions] (§6.3 Q6).
func (w *Windows) GaussianSize(partitions int, mean, stddev float64) (start, end int) {
	size := int(mean + stddev*w.rng.Gaussian(1) + 0.5)
	if size < 1 {
		size = 1
	}
	if size > partitions {
		size = partitions
	}
	start = w.rng.IntN(partitions - size + 1)
	return start, start + size - 1
}

// LatestWindow draws a window over the most recent partitions: size P
// uniform in [1, available], ending at the newest partition (§6.4:
// "queries request the latest P partitions").
func (w *Windows) LatestWindow(available int) (start, end int) {
	p := 1 + w.rng.IntN(available)
	return available - p, available - 1
}

// PoissonArrivals returns, for each of n queries, how many new partitions
// arrive before that query executes, with expected rate queries-per-
// partition λ (queries arrive as a Poisson process relative to partition
// arrivals; §6.1 "queries arrive online with arrival times following a
// Poisson process"). The generator is deterministic given the rng.
func (w *Windows) PoissonArrivals(n int, queriesPerPartition float64) []int {
	if queriesPerPartition <= 0 {
		panic("workload: non-positive arrival rate")
	}
	out := make([]int, n)
	for i := range out {
		// Each query boundary independently admits k new partitions with
		// k ~ Poisson(1/queriesPerPartition).
		out[i] = poisson(w.rng, 1/queriesPerPartition)
	}
	return out
}

// poisson draws from Poisson(lambda) by inversion (lambda is small here).
func poisson(rng *noise.Rng, lambda float64) int {
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
