// The empirical-convergence metric of §6.1: periodically evaluate the
// histogram on a validation workload sampled from the same pool, measure
// the fraction of queries answered within α/2, and report the number of
// histogram updates needed to reach 90% validation accuracy.

package workload

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/histogram"
	"repro/internal/noise"
	"repro/internal/query"
)

// Validator measures histogram quality against ground truth.
type Validator struct {
	queries []*query.Query
	truth   []float64
	alpha   float64
}

// NewValidator samples size validation queries from pool and precomputes
// their true results over partitions [start, end] of ds.
func NewValidator(pool []*query.Query, size int, alpha float64, ds *dataset.Dataset, start, end int, rng *noise.Rng) (*Validator, error) {
	if size <= 0 || alpha <= 0 {
		return nil, fmt.Errorf("workload: bad validator parameters size=%d alpha=%g", size, alpha)
	}
	z, err := NewZipf(pool, 0, rng)
	if err != nil {
		return nil, err
	}
	v := &Validator{alpha: alpha}
	v.queries = z.SampleN(size)
	v.truth = make([]float64, size)
	for i, q := range v.queries {
		t, err := ds.TrueFraction(q, start, end)
		if err != nil {
			return nil, err
		}
		v.truth[i] = t
	}
	return v, nil
}

// Accuracy returns the fraction of validation queries the histogram
// answers with error < α/2.
func (v *Validator) Accuracy(h *histogram.Histogram) float64 {
	good := 0
	for i, q := range v.queries {
		err := h.Eval(q) - v.truth[i]
		if err < 0 {
			err = -err
		}
		if err < v.alpha/2 {
			good++
		}
	}
	return float64(good) / float64(len(v.queries))
}

// Converged reports whether the histogram meets the 90% validation
// accuracy bar defining empirical convergence.
func (v *Validator) Converged(h *histogram.Histogram) bool {
	return v.Accuracy(h) >= 0.9
}

// Size returns the validation set size.
func (v *Validator) Size() int { return len(v.queries) }
