// Package workload builds the evaluation datasets and query workloads of
// §6.1: a synthetic Covid dataset with its exhaustive 34,425-query pool
// (the microbenchmark), a synthetic CitiBike dataset with a pool of ≈2,485
// primitive queries decomposed from 30 analyst analyses (the
// macrobenchmark), Zipfian query sampling, window generators for the
// partitioned use cases, and the empirical-convergence validation metric.
//
// The real datasets are replaced by generators that preserve what PMW
// behaviour depends on — schema, domain size, marginal skew, and
// week-over-week drift — as documented in DESIGN.md.
package workload

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/domain"
	"repro/internal/noise"
	"repro/internal/query"
)

// CovidDomain returns the evaluation Covid schema: test outcome, age
// bracket, gender, and ethnicity, with domain size N = 2·4·2·8 = 128.
func CovidDomain() *domain.Domain {
	return domain.MustNew(
		domain.Attribute{Name: "positive", Card: 2, Levels: []string{"negative", "positive"}},
		domain.Attribute{Name: "age", Card: 4, Levels: []string{"1-17", "18-49", "50-64", "65+"}},
		domain.Attribute{Name: "gender", Card: 2, Levels: []string{"female", "male"}},
		domain.Attribute{Name: "ethnicity", Card: 8},
	)
}

// CovidConfig sizes the synthetic Covid dataset.
type CovidConfig struct {
	// Rows is the total row count; the paper's dataset has 50,426,600.
	Rows int
	// Weeks is the number of time partitions; the paper spans 50.
	Weeks int
	// Seed drives the deterministic generator.
	Seed uint64
}

// DefaultCovid matches the paper's dataset dimensions.
func DefaultCovid() CovidConfig {
	return CovidConfig{Rows: 50_426_600, Weeks: 50, Seed: 7}
}

// BuildCovid materializes the synthetic Covid dataset: a demographic
// product distribution whose positivity rate drifts across weeks (waves),
// mimicking the California 2020 testing data the paper uses.
func BuildCovid(cfg CovidConfig) (*dataset.Dataset, error) {
	if cfg.Rows <= 0 || cfg.Weeks <= 0 {
		return nil, fmt.Errorf("workload: bad covid config %+v", cfg)
	}
	dom := CovidDomain()
	ds := dataset.New(dom, cfg.Weeks)
	rng := noise.NewRng(cfg.Seed)

	// Fixed demographic marginals (age, gender, ethnicity) with mild
	// random jitter so no bin is degenerate.
	ageW := jitter(rng, []float64{0.22, 0.45, 0.18, 0.15})
	genderW := jitter(rng, []float64{0.51, 0.49})
	ethW := jitter(rng, []float64{0.38, 0.18, 0.15, 0.06, 0.09, 0.05, 0.05, 0.04})

	perWeek := splitEvenly(cfg.Rows, cfg.Weeks, rng)
	tuple := make([]int, 4)
	counts := make([]int, dom.Size())
	for w := 0; w < cfg.Weeks; w++ {
		// Positivity wave: two bumps across the year plus noise.
		phase := float64(w) / float64(cfg.Weeks)
		pos := 0.06 + 0.18*wave(phase) + 0.02*rng.Float64()
		// Older brackets test positive slightly more often, giving the
		// attribute correlation PMW exploits.
		for i := range counts {
			counts[i] = 0
		}
		for a := 0; a < 4; a++ {
			posA := pos * (0.8 + 0.15*float64(a))
			if posA > 0.95 {
				posA = 0.95
			}
			for g := 0; g < 2; g++ {
				for e := 0; e < 8; e++ {
					cell := float64(perWeek[w]) * ageW[a] * genderW[g] * ethW[e]
					tuple[0], tuple[1], tuple[2], tuple[3] = 1, a, g, e
					posBin := dom.Encode(tuple)
					tuple[0] = 0
					negBin := dom.Encode(tuple)
					p := int(cell*posA + 0.5)
					n := int(cell + 0.5)
					if p > n {
						p = n
					}
					counts[posBin] += p
					counts[negBin] += n - p
				}
			}
		}
		if err := ds.BulkLoad(w, counts); err != nil {
			return nil, err
		}
	}
	return ds, nil
}

// CovidPool enumerates the full Covid query pool: every combination of a
// non-empty value subset per attribute, (2²−1)(2⁴−1)(2²−1)(2⁸−1) = 34,425
// unique queries (§6.1).
func CovidPool(dom *domain.Domain) []*query.Query {
	subsets := make([][][]int, dom.NumAttrs())
	for i := 0; i < dom.NumAttrs(); i++ {
		subsets[i] = nonEmptySubsets(dom.Card(i))
	}
	var pool []*query.Query
	var rec func(attr int, chosen map[int][]int)
	rec = func(attr int, chosen map[int][]int) {
		if attr == dom.NumAttrs() {
			allowed := make(map[int][]int, len(chosen))
			for k, v := range chosen {
				allowed[k] = v
			}
			pool = append(pool, query.MustNew(dom, allowed))
			return
		}
		for _, s := range subsets[attr] {
			chosen[attr] = s
			rec(attr+1, chosen)
		}
		delete(chosen, attr)
	}
	rec(0, make(map[int][]int))
	return pool
}

// nonEmptySubsets enumerates the non-empty subsets of {0..card-1}.
func nonEmptySubsets(card int) [][]int {
	var out [][]int
	for mask := 1; mask < 1<<card; mask++ {
		var s []int
		for v := 0; v < card; v++ {
			if mask&(1<<v) != 0 {
				s = append(s, v)
			}
		}
		out = append(out, s)
	}
	return out
}

// jitter perturbs weights by up to ±10% and renormalizes.
func jitter(rng *noise.Rng, w []float64) []float64 {
	out := make([]float64, len(w))
	sum := 0.0
	for i, x := range w {
		out[i] = x * (0.9 + 0.2*rng.Float64())
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// splitEvenly distributes total rows across k buckets with ±15% jitter.
func splitEvenly(total, k int, rng *noise.Rng) []int {
	weights := make([]float64, k)
	sum := 0.0
	for i := range weights {
		weights[i] = 0.85 + 0.3*rng.Float64()
		sum += weights[i]
	}
	out := make([]int, k)
	used := 0
	for i := range out {
		out[i] = int(float64(total) * weights[i] / sum)
		used += out[i]
	}
	out[k-1] += total - used
	return out
}

// wave is a two-bump [0,1] → [0,1] profile for positivity drift.
func wave(x float64) float64 {
	// Two raised cosines centred at 0.25 and 0.8.
	b := func(c, w float64) float64 {
		d := (x - c) / w
		if d < -1 || d > 1 {
			return 0
		}
		return (1 + cosPi(d)) / 2
	}
	v := 0.7*b(0.25, 0.2) + b(0.8, 0.15)
	if v > 1 {
		return 1
	}
	return v
}

// cosPi computes cos(πx).
func cosPi(x float64) float64 { return math.Cos(math.Pi * x) }
