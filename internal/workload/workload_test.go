package workload

import (
	"math"
	"testing"

	"repro/internal/histogram"
	"repro/internal/noise"
	"repro/internal/query"
)

func TestCovidDomainShape(t *testing.T) {
	d := CovidDomain()
	if d.Size() != 128 {
		t.Fatalf("Covid N = %d, want 128", d.Size())
	}
	if d.NumAttrs() != 4 {
		t.Fatalf("Covid attrs = %d", d.NumAttrs())
	}
}

func TestCovidPoolSizeMatchesPaper(t *testing.T) {
	pool := CovidPool(CovidDomain())
	// (2²−1)(2⁴−1)(2²−1)(2⁸−1) = 3·15·3·255 = 34,425 (§6.1).
	if len(pool) != 34425 {
		t.Fatalf("Covid pool = %d, want 34425", len(pool))
	}
	// Every query is unique by construction of the subset enumeration.
	seen := make(map[string]bool, len(pool))
	for _, q := range pool {
		k := q.Key()
		// Keys may collide because a full value set canonicalizes to
		// unconstrained — but predicates (support sets) must then agree.
		_ = k
		seen[k] = true
	}
	if len(seen) == 0 {
		t.Fatal("empty pool keys")
	}
}

func TestBuildCovidDimensions(t *testing.T) {
	cfg := CovidConfig{Rows: 100000, Weeks: 10, Seed: 1}
	ds, err := BuildCovid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Partitions() != 10 {
		t.Fatalf("partitions = %d", ds.Partitions())
	}
	n := ds.NRowsAll()
	if math.Abs(float64(n-cfg.Rows))/float64(cfg.Rows) > 0.05 {
		t.Fatalf("rows = %d, want ≈%d", n, cfg.Rows)
	}
	// Positivity must vary across weeks (waves) and stay in (0, 1).
	d := ds.Domain()
	posQ := query.MustNew(d, map[int][]int{0: {1}})
	rates := make([]float64, 10)
	for w := 0; w < 10; w++ {
		r, err := ds.TrueFraction(posQ, w, w)
		if err != nil {
			t.Fatal(err)
		}
		if r <= 0 || r >= 1 {
			t.Fatalf("week %d positivity %g out of range", w, r)
		}
		rates[w] = r
	}
	min, max := rates[0], rates[0]
	for _, r := range rates {
		min = math.Min(min, r)
		max = math.Max(max, r)
	}
	if max-min < 0.02 {
		t.Fatalf("positivity flat across weeks: min=%g max=%g", min, max)
	}
	if _, err := BuildCovid(CovidConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestBuildCovidDeterministic(t *testing.T) {
	cfg := CovidConfig{Rows: 50000, Weeks: 5, Seed: 3}
	a, _ := BuildCovid(cfg)
	b, _ := BuildCovid(cfg)
	q := query.MustNew(a.Domain(), map[int][]int{0: {1}, 1: {2}})
	fa, _ := a.TrueFraction(q, 0, 4)
	fb, _ := b.TrueFraction(q, 0, 4)
	if fa != fb {
		t.Fatal("same seed produced different datasets")
	}
}

func TestCitiBikeDomains(t *testing.T) {
	if n := CitiBikeDomain().Size(); n != 604800 {
		t.Fatalf("CitiBike N = %d, want 604800", n)
	}
	if n := CitiBikeSmallDomain().Size(); n != 1200 {
		t.Fatalf("CitiBike small N = %d, want 1200", n)
	}
}

func TestCitiBikeAnalysesCount(t *testing.T) {
	for _, d := range []int{0, 1} {
		dom := CitiBikeSmallDomain()
		if d == 1 {
			dom = CitiBikeDomain()
		}
		analyses := CitiBikeAnalyses(dom)
		if len(analyses) != 30 {
			t.Fatalf("analyses = %d, want 30 (domain %d)", len(analyses), d)
		}
	}
}

func TestCitiBikePoolSizeNearPaper(t *testing.T) {
	pool := CitiBikePool(CitiBikeSmallDomain())
	// Paper: 2,485 queries from 30 analyses. Our templates land in the
	// same ballpark.
	if len(pool) < 1200 || len(pool) > 3000 {
		t.Fatalf("CitiBike pool = %d, want ≈2485", len(pool))
	}
	t.Logf("CitiBike small pool size: %d", len(pool))
	poolFull := CitiBikePool(CitiBikeDomain())
	if len(poolFull) < 1200 || len(poolFull) > 3000 {
		t.Fatalf("CitiBike full pool = %d", len(poolFull))
	}
}

func TestBuildCitiBike(t *testing.T) {
	cfg := CitiBikeConfig{Rows: 200000, Weeks: 8, Small: true, Seed: 5}
	ds, err := BuildCitiBike(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Partitions() != 8 {
		t.Fatalf("partitions = %d", ds.Partitions())
	}
	n := ds.NRowsAll()
	if n < cfg.Rows/2 || n > cfg.Rows*2 {
		t.Fatalf("rows = %d, want within 2x of %d (seasonality)", n, cfg.Rows)
	}
	// Every analysis query must be answerable.
	for _, q := range CitiBikePool(ds.Domain())[:50] {
		if _, err := ds.TrueFraction(q, 0, 7); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := BuildCitiBike(CitiBikeConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestBuildCitiBikeFullDomain(t *testing.T) {
	// The full 604,800-point domain must materialize and answer queries;
	// this is the configuration behind the paper's §6.5 memory findings.
	cfg := CitiBikeConfig{Rows: 500_000, Weeks: 2, Small: false, Seed: 6}
	ds, err := BuildCitiBike(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Domain().Size() != 604800 {
		t.Fatalf("domain = %d", ds.Domain().Size())
	}
	pool := CitiBikePool(ds.Domain())
	if len(pool) < 1200 {
		t.Fatalf("full-domain pool = %d", len(pool))
	}
	// Spot-check a handful of pool queries end to end.
	total := 0.0
	for _, q := range pool[:20] {
		f, err := ds.TrueFraction(q, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if f < 0 || f > 1 {
			t.Fatalf("fraction %g out of range", f)
		}
		total += f
	}
	if total == 0 {
		t.Fatal("every sampled query empty: generator collapsed")
	}
}

func TestZipfUniform(t *testing.T) {
	d := CovidDomain()
	pool := CovidPool(d)[:100]
	z, err := NewZipf(pool, 0, noise.NewRng(1))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Sample().Key()]++
	}
	// Uniform: every query ≈ n/100 = 1000, allow wide tolerance.
	for k, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("uniform sample count for %q = %d", k, c)
		}
	}
	if z.PoolSize() != 100 {
		t.Fatal("PoolSize")
	}
}

func TestZipfSkewed(t *testing.T) {
	d := CovidDomain()
	pool := CovidPool(d)[:1000]
	z, _ := NewZipf(pool, 1.0, noise.NewRng(2))
	counts := make([]int, 1000)
	index := map[string]int{}
	for i, q := range pool {
		index[q.Key()+q.KeyWithWindow()] = i // keys unique enough within slice
	}
	_ = index
	const n = 200000
	first := 0
	for i := 0; i < n; i++ {
		q := z.Sample()
		if q == pool[0] {
			first++
		}
		_ = counts
	}
	// Under Zipf(1) over 1000 items, rank 1 gets share 1/H(1000) ≈ 13%.
	share := float64(first) / n
	if share < 0.10 || share > 0.17 {
		t.Fatalf("rank-1 share = %g, want ≈0.13", share)
	}
}

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(nil, 0, noise.NewRng(1)); err == nil {
		t.Fatal("empty pool accepted")
	}
	pool := CovidPool(CovidDomain())[:2]
	if _, err := NewZipf(pool, -1, noise.NewRng(1)); err == nil {
		t.Fatal("negative skew accepted")
	}
}

func TestSampleN(t *testing.T) {
	pool := CovidPool(CovidDomain())[:10]
	z, _ := NewZipf(pool, 0, noise.NewRng(3))
	qs := z.SampleN(500)
	if len(qs) != 500 {
		t.Fatal("SampleN length")
	}
}

func TestShuffle(t *testing.T) {
	pool := CovidPool(CovidDomain())[:100]
	sh := Shuffle(pool, noise.NewRng(4))
	if len(sh) != len(pool) {
		t.Fatal("shuffle changed length")
	}
	moved := 0
	seen := map[*query.Query]bool{}
	for i := range sh {
		if sh[i] != pool[i] {
			moved++
		}
		if seen[sh[i]] {
			t.Fatal("shuffle duplicated an element")
		}
		seen[sh[i]] = true
	}
	if moved < 50 {
		t.Fatalf("shuffle barely moved anything: %d", moved)
	}
}

func TestWindowsGenerators(t *testing.T) {
	w := NewWindows(noise.NewRng(5))
	for i := 0; i < 1000; i++ {
		s, e := w.UniformContiguous(50)
		if s < 0 || e >= 50 || s > e {
			t.Fatalf("UniformContiguous out of range: [%d,%d]", s, e)
		}
	}
	sizes := map[int]bool{}
	for i := 0; i < 2000; i++ {
		s, e := w.GaussianSize(50, 25, 5)
		if s < 0 || e >= 50 || s > e {
			t.Fatalf("GaussianSize out of range: [%d,%d]", s, e)
		}
		sizes[e-s+1] = true
	}
	if len(sizes) < 10 {
		t.Fatal("GaussianSize produced too few distinct sizes")
	}
	for i := 0; i < 1000; i++ {
		s, e := w.LatestWindow(20)
		if e != 19 || s < 0 || s > 19 {
			t.Fatalf("LatestWindow = [%d,%d], must end at newest", s, e)
		}
	}
}

func TestPoissonArrivals(t *testing.T) {
	w := NewWindows(noise.NewRng(6))
	arr := w.PoissonArrivals(100000, 10) // expect ~1 partition per 10 queries
	total := 0
	for _, a := range arr {
		if a < 0 {
			t.Fatal("negative arrival")
		}
		total += a
	}
	want := 100000.0 / 10
	if math.Abs(float64(total)-want)/want > 0.1 {
		t.Fatalf("total arrivals = %d, want ≈%g", total, want)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad rate did not panic")
			}
		}()
		w.PoissonArrivals(10, 0)
	}()
}

func TestValidator(t *testing.T) {
	cfg := CovidConfig{Rows: 100000, Weeks: 2, Seed: 9}
	ds, _ := BuildCovid(cfg)
	pool := CovidPool(ds.Domain())
	v, err := NewValidator(pool, 200, 0.05, ds, 0, 1, noise.NewRng(7))
	if err != nil {
		t.Fatal(err)
	}
	if v.Size() != 200 {
		t.Fatal("Size")
	}
	// The exact true distribution answers everything perfectly.
	truth, _ := ds.TrueDistribution(0, 1)
	perfect, err := histogram.FromWeights(truth)
	if err != nil {
		t.Fatal(err)
	}
	if acc := v.Accuracy(perfect); acc != 1 {
		t.Fatalf("true distribution accuracy = %g, want 1", acc)
	}
	if !v.Converged(perfect) {
		t.Fatal("perfect histogram not converged")
	}
	// The uniform prior must be visibly worse.
	uniform := histogram.NewUniform(ds.Domain().Size())
	if acc := v.Accuracy(uniform); acc >= 1 {
		t.Fatalf("uniform accuracy = %g, want < 1", acc)
	}
	if _, err := NewValidator(pool, 0, 0.05, ds, 0, 1, noise.NewRng(7)); err == nil {
		t.Fatal("zero size accepted")
	}
}
