// Synthetic CitiBike dataset and query pool (§6.1 macrobenchmark).
//
// The paper coarsens the 2018-2019 NYC bike-rental data to ten
// neighbourhoods and four age brackets, yielding n = 21,096,261 records
// over a domain of size N = 604,800 spanning 50 weeks, and extracts 30
// analyst analyses from Public Tableau whose GROUP BY statements decompose
// into a pool of 2,485 primitive queries. We reproduce the same shape: a
// product-form ride distribution with weekly seasonality over a domain of
// exactly 604,800 points (10·10·3·4·6·7·6·2), and 30 analysis templates
// whose decomposition yields a pool of the same order. A reduced-domain
// variant keeps default benchmark wall-clock reasonable; the full domain
// sits behind the same API.

package workload

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/domain"
	"repro/internal/noise"
	"repro/internal/query"
)

// CitiBikeDomain returns the full-size CitiBike schema, N = 604,800.
func CitiBikeDomain() *domain.Domain {
	return domain.MustNew(
		domain.Attribute{Name: "start", Card: 10},
		domain.Attribute{Name: "end", Card: 10},
		domain.Attribute{Name: "gender", Card: 3, Levels: []string{"unknown", "male", "female"}},
		domain.Attribute{Name: "age", Card: 4, Levels: []string{"16-25", "26-40", "41-60", "61+"}},
		domain.Attribute{Name: "duration", Card: 6},
		domain.Attribute{Name: "weekday", Card: 7},
		domain.Attribute{Name: "hour", Card: 6},
		domain.Attribute{Name: "usertype", Card: 2, Levels: []string{"subscriber", "customer"}},
	)
}

// CitiBikeSmallDomain is a reduced variant (N = 10·10·3·4 = 1,200) that
// preserves the pool structure over the four attributes the analyses use
// most, keeping default benchmark runs fast. EXPERIMENTS.md reports which
// variant each figure used.
func CitiBikeSmallDomain() *domain.Domain {
	return domain.MustNew(
		domain.Attribute{Name: "start", Card: 10},
		domain.Attribute{Name: "end", Card: 10},
		domain.Attribute{Name: "gender", Card: 3, Levels: []string{"unknown", "male", "female"}},
		domain.Attribute{Name: "age", Card: 4, Levels: []string{"16-25", "26-40", "41-60", "61+"}},
	)
}

// CitiBikeConfig sizes the synthetic CitiBike dataset.
type CitiBikeConfig struct {
	// Rows is the total ride count; the paper's dataset has 21,096,261.
	Rows int
	// Weeks is the number of time partitions (paper: 50).
	Weeks int
	// Small selects the reduced domain.
	Small bool
	// Seed drives the deterministic generator.
	Seed uint64
}

// DefaultCitiBike matches the paper's dimensions on the reduced domain.
func DefaultCitiBike() CitiBikeConfig {
	return CitiBikeConfig{Rows: 21_096_261, Weeks: 50, Small: true, Seed: 11}
}

// BuildCitiBike materializes the synthetic ride data: product marginals
// with commuter structure (rush-hour and weekday skew) and a seasonal
// volume cycle across weeks.
func BuildCitiBike(cfg CitiBikeConfig) (*dataset.Dataset, error) {
	if cfg.Rows <= 0 || cfg.Weeks <= 0 {
		return nil, fmt.Errorf("workload: bad citibike config %+v", cfg)
	}
	dom := CitiBikeDomain()
	if cfg.Small {
		dom = CitiBikeSmallDomain()
	}
	ds := dataset.New(dom, cfg.Weeks)
	rng := noise.NewRng(cfg.Seed)

	// Marginals per attribute; trailing attributes exist only in the full
	// domain.
	marginals := [][]float64{
		jitter(rng, []float64{0.18, 0.16, 0.14, 0.12, 0.10, 0.08, 0.07, 0.06, 0.05, 0.04}), // start
		jitter(rng, []float64{0.17, 0.15, 0.14, 0.12, 0.10, 0.09, 0.08, 0.06, 0.05, 0.04}), // end
		jitter(rng, []float64{0.12, 0.62, 0.26}),                                           // gender
		jitter(rng, []float64{0.28, 0.42, 0.24, 0.06}),                                     // age
		jitter(rng, []float64{0.30, 0.28, 0.18, 0.12, 0.08, 0.04}),                         // duration
		jitter(rng, []float64{0.16, 0.16, 0.16, 0.16, 0.15, 0.11, 0.10}),                   // weekday
		jitter(rng, []float64{0.08, 0.24, 0.14, 0.12, 0.26, 0.16}),                         // hour
		jitter(rng, []float64{0.86, 0.14}),                                                 // usertype
	}
	marginals = marginals[:dom.NumAttrs()]

	perWeek := splitEvenly(cfg.Rows, cfg.Weeks, rng)
	counts := make([]int, dom.Size())
	tuple := make([]int, dom.NumAttrs())
	for w := 0; w < cfg.Weeks; w++ {
		// Seasonal cycle: ridership peaks mid-span (summer).
		season := 0.7 + 0.6*wave(float64(w)/float64(cfg.Weeks))
		nW := int(float64(perWeek[w]) * season)
		if nW < 1 {
			nW = 1
		}
		for i := range counts {
			counts[i] = 0
		}
		assigned := 0
		// Deterministic largest-cell-first fill: compute expected count
		// per bin from the product of marginals.
		for bin := 0; bin < dom.Size(); bin++ {
			p := 1.0
			rest := bin
			for a := 0; a < dom.NumAttrs(); a++ {
				stride := dom.Stride(a)
				v := rest / stride
				rest %= stride
				p *= marginals[a][v]
				tuple[a] = v
			}
			c := int(float64(nW)*p + 0.5)
			counts[bin] = c
			assigned += c
		}
		// Deposit any rounding remainder on the heaviest bin.
		if assigned < nW {
			best := 0
			for i, c := range counts {
				if c > counts[best] {
					best = i
				}
			}
			counts[best] += nW - assigned
		}
		if err := ds.BulkLoad(w, counts); err != nil {
			return nil, err
		}
	}
	return ds, nil
}

// Analysis is one analyst dashboard: a filter plus GROUP BY attributes.
// Decomposition turns each combination of group values into a primitive
// query, as the paper does with the Tableau analyses.
type Analysis struct {
	Name    string
	Filter  map[int][]int // attribute → allowed values
	GroupBy []int         // attributes whose value combinations enumerate
}

// CitiBikeAnalyses returns 30 analysis templates in the spirit of the
// public dashboards the paper harvested (ridership by route, demographics
// by neighbourhood, commute-time profiles, ...), restricted to the
// attributes present in dom.
func CitiBikeAnalyses(dom *domain.Domain) []Analysis {
	a := func(name string, filter map[int][]int, groupBy ...int) Analysis {
		return Analysis{Name: name, Filter: filter, GroupBy: groupBy}
	}
	start, end, gender, age := 0, 1, 2, 3
	out := []Analysis{
		a("rides-by-route", nil, start, end),                          // 100
		a("rides-by-start", nil, start),                               // 10
		a("rides-by-end", nil, end),                                   // 10
		a("gender-by-start", nil, start, gender),                      // 30
		a("age-by-start", nil, start, age),                            // 40
		a("age-by-end", nil, end, age),                                // 40
		a("gender-split", nil, gender),                                // 3
		a("age-split", nil, age),                                      // 4
		a("gender-age", nil, gender, age),                             // 12
		a("male-routes", map[int][]int{gender: {1}}, start, end),      // 100
		a("female-routes", map[int][]int{gender: {2}}, start, end),    // 100
		a("young-routes", map[int][]int{age: {0}}, start, end),        // 100
		a("senior-by-start", map[int][]int{age: {3}}, start),          // 10
		a("prime-age-route", map[int][]int{age: {1, 2}}, start, end),  // 100
		a("downtown-age", map[int][]int{start: {0, 1, 2}}, end, age),  // 40
		a("uptown-gender", map[int][]int{start: {7, 8, 9}}, end, age), // 40
		a("crosstown", map[int][]int{end: {0, 1}}, start, gender),     // 30
		a("age-gender-start", nil, start, gender, age),                // 120
		a("loopback", map[int][]int{start: {0}}, end, gender),         // 30
		a("hub-traffic", map[int][]int{end: {0}}, start, age),         // 40
	}
	if dom.NumAttrs() > 4 {
		duration, weekday, hour, usertype := 4, 5, 6, 7
		out = append(out,
			a("duration-profile", nil, duration),                               // 6
			a("weekday-volume", nil, weekday),                                  // 7
			a("hourly-volume", nil, hour),                                      // 6
			a("commute-hours", map[int][]int{hour: {1, 4}}, weekday, usertype), // 14
			a("weekend-age", map[int][]int{weekday: {5, 6}}, age, duration),    // 24
			a("subscriber-hours", map[int][]int{usertype: {0}}, weekday, hour), // 42
			a("customer-routes", map[int][]int{usertype: {1}}, start, end),     // 100
			a("long-rides", map[int][]int{duration: {4, 5}}, start, age),       // 40
			a("rush-routes", map[int][]int{hour: {1}}, start, end),             // 100
			a("night-gender", map[int][]int{hour: {0}}, gender, weekday),       // 21
		)
	} else {
		// Reduced domain: substitute analyses over the four attributes so
		// the template count stays at 30.
		out = append(out,
			a("unknown-gender-route", map[int][]int{gender: {0}}, start, end), // 100
			a("senior-routes", map[int][]int{age: {3}}, start, end),           // 100
			a("midtown-mix", map[int][]int{start: {3, 4, 5}}, end, gender),    // 30
			a("east-side", map[int][]int{end: {2, 3}}, start, age),            // 40
			a("young-by-end", map[int][]int{age: {0, 1}}, end, gender),        // 30
			a("male-by-age", map[int][]int{gender: {1}}, start, age),          // 40
			a("female-by-end", map[int][]int{gender: {2}}, end, age),          // 40
			a("short-hops", map[int][]int{start: {0, 1}, end: {0, 1}}, age),   // 4
			a("borough-pairs", map[int][]int{start: {5, 6, 7, 8, 9}}, end),    // 10
			a("all-demographics", nil, gender, age, end),                      // 120
		)
	}
	return out
}

// CitiBikePool decomposes the analyses into primitive queries: one per
// combination of GROUP BY values, each also carrying the analysis filter.
// On the paper's attribute choices this yields a pool of ≈2,485 queries.
func CitiBikePool(dom *domain.Domain) []*query.Query {
	var pool []*query.Query
	for _, an := range CitiBikeAnalyses(dom) {
		pool = append(pool, decompose(dom, an)...)
	}
	return pool
}

// decompose enumerates one analysis's primitive queries.
func decompose(dom *domain.Domain, an Analysis) []*query.Query {
	var out []*query.Query
	assign := make([]int, len(an.GroupBy))
	var rec func(i int)
	rec = func(i int) {
		if i == len(an.GroupBy) {
			allowed := make(map[int][]int, len(an.Filter)+len(an.GroupBy))
			for k, v := range an.Filter {
				allowed[k] = v
			}
			for j, attr := range an.GroupBy {
				allowed[attr] = []int{assign[j]}
			}
			out = append(out, query.MustNew(dom, allowed))
			return
		}
		for v := 0; v < dom.Card(an.GroupBy[i]); v++ {
			assign[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return out
}
