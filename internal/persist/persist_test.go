package persist

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// fakeLayer is a minimal Snapshotter for envelope tests.
type fakeLayer struct {
	name     string
	state    []byte
	opt      bool
	saveErr  error
	loadErr  error
	quiesced int
	resumed  int
}

func (f *fakeLayer) SnapshotSection() string { return f.name }
func (f *fakeLayer) SnapshotPayload() ([]byte, error) {
	if f.saveErr != nil {
		return nil, f.saveErr
	}
	return f.state, nil
}
func (f *fakeLayer) RestorePayload(p []byte) error {
	if f.loadErr != nil {
		return f.loadErr
	}
	f.state = append([]byte(nil), p...)
	return nil
}
func (f *fakeLayer) SnapshotOptional() bool { return f.opt }
func (f *fakeLayer) Quiesce() func() {
	f.quiesced++
	return func() { f.resumed++ }
}

func TestRoundTrip(t *testing.T) {
	a := &fakeLayer{name: "a", state: []byte("alpha")}
	b := &fakeLayer{name: "b", state: []byte("beta")}
	reg := NewRegistry()
	reg.Register(a)
	reg.Register(b)

	var buf bytes.Buffer
	if err := reg.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if a.quiesced != 1 || a.resumed != 1 {
		t.Fatalf("quiesce/resume = %d/%d, want 1/1", a.quiesced, a.resumed)
	}

	a2 := &fakeLayer{name: "a"}
	b2 := &fakeLayer{name: "b"}
	reg2 := NewRegistry()
	reg2.Register(a2)
	reg2.Register(b2)
	if err := reg2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if string(a2.state) != "alpha" || string(b2.state) != "beta" {
		t.Fatalf("restored %q/%q", a2.state, b2.state)
	}
}

func TestBadMagic(t *testing.T) {
	reg := NewRegistry()
	reg.Register(&fakeLayer{name: "a"})
	for _, input := range [][]byte{nil, []byte("x"), []byte("NOTASNAP????????")} {
		if err := reg.Load(bytes.NewReader(input)); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("input %q: err = %v, want ErrBadMagic", input, err)
		}
	}
}

func TestBadVersion(t *testing.T) {
	// Valid magic, version 99.
	input := append([]byte(magic), 0, 0, 0, 99)
	if _, _, err := ReadSections(bytes.NewReader(input)); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestTruncated(t *testing.T) {
	a := &fakeLayer{name: "a", state: bytes.Repeat([]byte("x"), 256)}
	reg := NewRegistry()
	reg.Register(a)
	var buf bytes.Buffer
	if err := reg.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Cut anywhere after the header but before the end: typed truncation.
	for _, cut := range []int{len(magic) + 2, len(magic) + 4, len(full) / 2, len(full) - 1} {
		err := reg.Load(bytes.NewReader(full[:cut]))
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

func TestUnknownAndMissingSections(t *testing.T) {
	a := &fakeLayer{name: "a", state: []byte("alpha")}
	b := &fakeLayer{name: "b", state: []byte("beta")}
	reg := NewRegistry()
	reg.Register(a)
	reg.Register(b)
	var buf bytes.Buffer
	if err := reg.Save(&buf); err != nil {
		t.Fatal(err)
	}

	// A reader that only knows "a" trips over "b".
	onlyA := NewRegistry()
	onlyA.Register(&fakeLayer{name: "a"})
	if err := onlyA.Load(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrUnknownSection) {
		t.Fatalf("err = %v, want ErrUnknownSection", err)
	}

	// A reader that also requires "c" misses it.
	withC := NewRegistry()
	withC.Register(&fakeLayer{name: "a"})
	withC.Register(&fakeLayer{name: "b"})
	withC.Register(&fakeLayer{name: "c"})
	if err := withC.Load(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrMissingSection) {
		t.Fatalf("err = %v, want ErrMissingSection", err)
	}

	// Unless "c" is optional, in which case it is skipped.
	withOptC := NewRegistry()
	withOptC.Register(&fakeLayer{name: "a"})
	withOptC.Register(&fakeLayer{name: "b"})
	withOptC.Register(&fakeLayer{name: "c", opt: true})
	if err := withOptC.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
}

func TestOptionalNilPayloadOmitted(t *testing.T) {
	reg := NewRegistry()
	reg.Register(&fakeLayer{name: "a", state: []byte("alpha")})
	reg.Register(&fakeLayer{name: "idle", opt: true}) // nil payload
	var buf bytes.Buffer
	if err := reg.Save(&buf); err != nil {
		t.Fatal(err)
	}
	_, order, err := ReadSections(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 1 || order[0] != "a" {
		t.Fatalf("sections = %v, want [a]", order)
	}
}

func TestSectionErrorNamesOffender(t *testing.T) {
	boom := errors.New("boom")
	reg := NewRegistry()
	reg.Register(&fakeLayer{name: "good", state: []byte("x")})
	reg.Register(&fakeLayer{name: "bad", state: []byte("y")})
	var buf bytes.Buffer
	if err := reg.Save(&buf); err != nil {
		t.Fatal(err)
	}

	reg2 := NewRegistry()
	reg2.Register(&fakeLayer{name: "good"})
	reg2.Register(&fakeLayer{name: "bad", loadErr: boom})
	err := reg2.Load(bytes.NewReader(buf.Bytes()))
	var se *SectionError
	if !errors.As(err, &se) || se.Section != "bad" || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want SectionError naming \"bad\" wrapping boom", err)
	}

	// Save-side failures are attributed the same way.
	regSave := NewRegistry()
	regSave.Register(&fakeLayer{name: "bad", saveErr: boom})
	err = regSave.Save(&bytes.Buffer{})
	se = nil
	if !errors.As(err, &se) || se.Section != "bad" {
		t.Fatalf("save err = %v, want SectionError naming \"bad\"", err)
	}
}

func TestRegisterReplacesSameSection(t *testing.T) {
	old := &fakeLayer{name: "s", state: []byte("old")}
	neu := &fakeLayer{name: "s", state: []byte("new")}
	reg := NewRegistry()
	reg.Register(&fakeLayer{name: "first", state: []byte("1")})
	reg.Register(old)
	reg.Register(neu)
	if got := reg.Sections(); len(got) != 2 || got[1] != "s" {
		t.Fatalf("sections = %v", got)
	}
	var buf bytes.Buffer
	if err := reg.Save(&buf); err != nil {
		t.Fatal(err)
	}
	payloads, _, err := ReadSections(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if string(payloads["s"]) != "new" {
		t.Fatalf("section s = %q, want the replacement's payload", payloads["s"])
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("hello"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read %q, %v", got, err)
	}

	// A failed write must leave the published file untouched and no temp
	// residue behind.
	boom := errors.New("boom")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, _ = w.Write([]byte("torn"))
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	got, err = os.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("after failed write: %q, %v", got, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries, want only the snapshot", len(entries))
	}
}

// TestV1EnvelopeStillReadable pins the compatibility contract of the v2
// (compressed) format bump: uncompressed v1 envelopes from earlier
// builds round-trip into the same registry.
func TestV1EnvelopeStillReadable(t *testing.T) {
	a := &fakeLayer{name: "a", state: []byte("alpha")}
	b := &fakeLayer{name: "b", state: []byte("beta")}
	reg := NewRegistry()
	reg.Register(a)
	reg.Register(b)

	var v1 bytes.Buffer
	if err := reg.CaptureVersion(&v1, 1); err != nil {
		t.Fatal(err)
	}
	// A v1 header carries version 1 and a raw (uncompressed) gob stream.
	raw := v1.Bytes()
	if raw[len(magic)+3] != 1 {
		t.Fatalf("v1 envelope declares version %d", raw[len(magic)+3])
	}

	a2 := &fakeLayer{name: "a"}
	b2 := &fakeLayer{name: "b"}
	reg2 := NewRegistry()
	reg2.Register(a2)
	reg2.Register(b2)
	if err := reg2.Load(bytes.NewReader(raw)); err != nil {
		t.Fatal(err)
	}
	if string(a2.state) != "alpha" || string(b2.state) != "beta" {
		t.Fatalf("v1 restored %q/%q", a2.state, b2.state)
	}
}

// TestV2EnvelopeCompresses pins that the current format actually gzips:
// a compressible payload produces a smaller envelope than its v1 form,
// and truncating it anywhere yields ErrTruncated (the trailer check).
func TestV2EnvelopeCompresses(t *testing.T) {
	a := &fakeLayer{name: "a", state: bytes.Repeat([]byte("turbo"), 4096)}
	reg := NewRegistry()
	reg.Register(a)

	var v1, v2 bytes.Buffer
	if err := reg.CaptureVersion(&v1, 1); err != nil {
		t.Fatal(err)
	}
	if err := reg.Capture(&v2); err != nil {
		t.Fatal(err)
	}
	if v2.Len() >= v1.Len() {
		t.Fatalf("v2 envelope (%d bytes) not smaller than v1 (%d bytes)", v2.Len(), v1.Len())
	}
	a2 := &fakeLayer{name: "a"}
	reg2 := NewRegistry()
	reg2.Register(a2)
	if err := reg2.Load(bytes.NewReader(v2.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a2.state, a.state) {
		t.Fatal("v2 round-trip corrupted the payload")
	}
	// Cut just before the gzip trailer: the end marker may still decode,
	// but the missing checksum must surface as truncation.
	cut := v2.Bytes()[:v2.Len()-4]
	if err := reg2.Load(bytes.NewReader(cut)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("trailer-cut envelope: err = %v, want ErrTruncated", err)
	}
}

func TestNewWriterVersionRefusesUnknown(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriterVersion(&buf, 99); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

// memKV is a minimal in-memory KV for incremental-snapshot tests (the
// real backends live in internal/store, which persist must not import).
type memKV struct {
	data map[string][]byte
	sets int
}

func newMemKV() *memKV { return &memKV{data: make(map[string][]byte)} }

func (m *memKV) Set(ns, k string, value any) error {
	raw, err := Encode(value)
	if err != nil {
		return err
	}
	m.data[ns+":"+k] = raw
	m.sets++
	return nil
}

func (m *memKV) Get(ns, k string, out any) (bool, error) {
	raw, ok := m.data[ns+":"+k]
	if !ok {
		return false, nil
	}
	return true, Decode(raw, out)
}

func (m *memKV) Keys(ns string) []string {
	var out []string
	for k := range m.data {
		if len(k) > len(ns) && k[:len(ns)+1] == ns+":" {
			out = append(out, k[len(ns)+1:])
		}
	}
	return out
}

func (m *memKV) Delete(ns, k string) bool {
	_, ok := m.data[ns+":"+k]
	delete(m.data, ns+":"+k)
	return ok
}

func TestKVSnapshotRoundTrip(t *testing.T) {
	a := &fakeLayer{name: "a", state: []byte("alpha")}
	b := &fakeLayer{name: "b", state: []byte("beta")}
	reg := NewRegistry()
	reg.Register(a)
	reg.Register(b)

	kv := newMemKV()
	written, skipped, err := reg.SaveKV(kv, "snap")
	if err != nil {
		t.Fatal(err)
	}
	if written != 2 || skipped != 0 {
		t.Fatalf("first SaveKV wrote %d, skipped %d", written, skipped)
	}
	if a.quiesced != 1 || a.resumed != 1 {
		t.Fatalf("quiesce/resume = %d/%d, want 1/1", a.quiesced, a.resumed)
	}

	a2 := &fakeLayer{name: "a"}
	b2 := &fakeLayer{name: "b"}
	reg2 := NewRegistry()
	reg2.Register(a2)
	reg2.Register(b2)
	if err := reg2.LoadKV(kv, "snap"); err != nil {
		t.Fatal(err)
	}
	if string(a2.state) != "alpha" || string(b2.state) != "beta" {
		t.Fatalf("KV restored %q/%q", a2.state, b2.state)
	}
}

// TestKVSnapshotIncremental pins the seam's point: an unchanged section
// costs no write on the next checkpoint; a changed one is rewritten.
func TestKVSnapshotIncremental(t *testing.T) {
	a := &fakeLayer{name: "a", state: []byte("alpha")}
	b := &fakeLayer{name: "b", state: []byte("beta")}
	reg := NewRegistry()
	reg.Register(a)
	reg.Register(b)

	kv := newMemKV()
	if _, _, err := reg.SaveKV(kv, "snap"); err != nil {
		t.Fatal(err)
	}
	written, skipped, err := reg.SaveKV(kv, "snap")
	if err != nil {
		t.Fatal(err)
	}
	if written != 0 || skipped != 2 {
		t.Fatalf("idle SaveKV wrote %d, skipped %d; want 0, 2", written, skipped)
	}
	a.state = []byte("alpha2")
	written, skipped, err = reg.SaveKV(kv, "snap")
	if err != nil {
		t.Fatal(err)
	}
	if written != 1 || skipped != 1 {
		t.Fatalf("SaveKV after one change wrote %d, skipped %d; want 1, 1", written, skipped)
	}
}

// TestKVSnapshotTornManifestRecovers pins the self-healing contract: a
// previous manifest that exists but cannot be decoded (torn write,
// corrupt byte) is treated as absent, so the next checkpoint is a full
// rewrite instead of an error — one corrupt manifest must not wedge every
// future checkpoint.
func TestKVSnapshotTornManifestRecovers(t *testing.T) {
	a := &fakeLayer{name: "a", state: []byte("alpha")}
	b := &fakeLayer{name: "b", state: []byte("beta")}
	reg := NewRegistry()
	reg.Register(a)
	reg.Register(b)

	kv := newMemKV()
	if _, _, err := reg.SaveKV(kv, "snap"); err != nil {
		t.Fatal(err)
	}
	// Corrupt the stored manifest in place (a torn in-place overwrite).
	kv.data["snap:!manifest"] = []byte("not a gob stream")

	written, skipped, err := reg.SaveKV(kv, "snap")
	if err != nil {
		t.Fatalf("SaveKV over a torn manifest: %v", err)
	}
	if written != 2 || skipped != 0 {
		t.Fatalf("recovery SaveKV wrote %d, skipped %d; want full rewrite 2, 0", written, skipped)
	}

	a2 := &fakeLayer{name: "a"}
	b2 := &fakeLayer{name: "b"}
	reg2 := NewRegistry()
	reg2.Register(a2)
	reg2.Register(b2)
	if err := reg2.LoadKV(kv, "snap"); err != nil {
		t.Fatalf("LoadKV after recovery: %v", err)
	}
	if string(a2.state) != "alpha" || string(b2.state) != "beta" {
		t.Fatalf("recovered snapshot restored %q/%q", a2.state, b2.state)
	}
	// And incrementality resumes: the fresh manifest makes the next
	// checkpoint skip everything again.
	if _, skipped, err := reg.SaveKV(kv, "snap"); err != nil || skipped != 2 {
		t.Fatalf("post-recovery SaveKV skipped %d (err %v); want 2", skipped, err)
	}
}

// TestKVSnapshotValidation pins the Load discipline over KV snapshots:
// no manifest, unknown sections, missing sections, and torn checkpoints
// surface as the same typed errors the envelope reader uses.
func TestKVSnapshotValidation(t *testing.T) {
	a := &fakeLayer{name: "a", state: []byte("alpha")}
	reg := NewRegistry()
	reg.Register(a)
	kv := newMemKV()

	if err := reg.LoadKV(kv, "empty"); !errors.Is(err, ErrMissingSection) {
		t.Fatalf("no manifest: err = %v, want ErrMissingSection", err)
	}
	if _, _, err := reg.SaveKV(kv, "snap"); err != nil {
		t.Fatal(err)
	}

	// Unknown section: a registry that does not own "a".
	other := NewRegistry()
	other.Register(&fakeLayer{name: "z"})
	if err := other.LoadKV(kv, "snap"); !errors.Is(err, ErrUnknownSection) {
		t.Fatalf("foreign registry: err = %v, want ErrUnknownSection", err)
	}

	// Missing section: registry owns more than the snapshot carries.
	wider := NewRegistry()
	wider.Register(&fakeLayer{name: "a"})
	wider.Register(&fakeLayer{name: "z"})
	if err := wider.LoadKV(kv, "snap"); !errors.Is(err, ErrMissingSection) {
		t.Fatalf("wider registry: err = %v, want ErrMissingSection", err)
	}

	// Torn checkpoint: manifest names a section whose key is gone.
	kv.Delete("snap", "a")
	if err := reg.LoadKV(kv, "snap"); !errors.Is(err, ErrTruncated) {
		t.Fatalf("torn checkpoint: err = %v, want ErrTruncated", err)
	}
}

// TestKVSnapshotDropsStaleSections pins that a section absent from the
// new checkpoint (an optional layer gone idle) is deleted, not left to
// resurrect on restore.
func TestKVSnapshotDropsStaleSections(t *testing.T) {
	a := &fakeLayer{name: "a", state: []byte("alpha")}
	opt := &fakeLayer{name: "opt", state: []byte("pending"), opt: true}
	reg := NewRegistry()
	reg.Register(a)
	reg.Register(opt)

	kv := newMemKV()
	if _, _, err := reg.SaveKV(kv, "snap"); err != nil {
		t.Fatal(err)
	}
	opt.state = nil // idle: optional section omits itself
	if _, _, err := reg.SaveKV(kv, "snap"); err != nil {
		t.Fatal(err)
	}
	var raw []byte
	if ok, _ := kv.Get("snap", "opt", &raw); ok {
		t.Fatal("stale optional section survived the next checkpoint")
	}
	a2 := &fakeLayer{name: "a"}
	opt2 := &fakeLayer{name: "opt", opt: true}
	reg2 := NewRegistry()
	reg2.Register(a2)
	reg2.Register(opt2)
	if err := reg2.LoadKV(kv, "snap"); err != nil {
		t.Fatal(err)
	}
	if opt2.state != nil {
		t.Fatalf("idle optional section restored %q", opt2.state)
	}
}

// TestKVSnapshotSelfRepairsDeletedSection pins the fix for permanently
// torn checkpoints: a section key deleted (or evicted) from the store is
// rewritten on the next checkpoint even though its payload hash is
// unchanged.
func TestKVSnapshotSelfRepairsDeletedSection(t *testing.T) {
	a := &fakeLayer{name: "a", state: []byte("alpha")}
	reg := NewRegistry()
	reg.Register(a)
	kv := newMemKV()
	if _, _, err := reg.SaveKV(kv, "snap"); err != nil {
		t.Fatal(err)
	}
	kv.Delete("snap", "a") // eviction or operator damage
	written, skipped, err := reg.SaveKV(kv, "snap")
	if err != nil {
		t.Fatal(err)
	}
	if written != 1 || skipped != 0 {
		t.Fatalf("repair checkpoint wrote %d, skipped %d; want 1, 0", written, skipped)
	}
	a2 := &fakeLayer{name: "a"}
	reg2 := NewRegistry()
	reg2.Register(a2)
	if err := reg2.LoadKV(kv, "snap"); err != nil {
		t.Fatal(err)
	}
	if string(a2.state) != "alpha" {
		t.Fatalf("repaired checkpoint restored %q", a2.state)
	}
}
