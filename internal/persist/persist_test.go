package persist

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// fakeLayer is a minimal Snapshotter for envelope tests.
type fakeLayer struct {
	name     string
	state    []byte
	opt      bool
	saveErr  error
	loadErr  error
	quiesced int
	resumed  int
}

func (f *fakeLayer) SnapshotSection() string { return f.name }
func (f *fakeLayer) SnapshotPayload() ([]byte, error) {
	if f.saveErr != nil {
		return nil, f.saveErr
	}
	return f.state, nil
}
func (f *fakeLayer) RestorePayload(p []byte) error {
	if f.loadErr != nil {
		return f.loadErr
	}
	f.state = append([]byte(nil), p...)
	return nil
}
func (f *fakeLayer) SnapshotOptional() bool { return f.opt }
func (f *fakeLayer) Quiesce() func() {
	f.quiesced++
	return func() { f.resumed++ }
}

func TestRoundTrip(t *testing.T) {
	a := &fakeLayer{name: "a", state: []byte("alpha")}
	b := &fakeLayer{name: "b", state: []byte("beta")}
	reg := NewRegistry()
	reg.Register(a)
	reg.Register(b)

	var buf bytes.Buffer
	if err := reg.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if a.quiesced != 1 || a.resumed != 1 {
		t.Fatalf("quiesce/resume = %d/%d, want 1/1", a.quiesced, a.resumed)
	}

	a2 := &fakeLayer{name: "a"}
	b2 := &fakeLayer{name: "b"}
	reg2 := NewRegistry()
	reg2.Register(a2)
	reg2.Register(b2)
	if err := reg2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if string(a2.state) != "alpha" || string(b2.state) != "beta" {
		t.Fatalf("restored %q/%q", a2.state, b2.state)
	}
}

func TestBadMagic(t *testing.T) {
	reg := NewRegistry()
	reg.Register(&fakeLayer{name: "a"})
	for _, input := range [][]byte{nil, []byte("x"), []byte("NOTASNAP????????")} {
		if err := reg.Load(bytes.NewReader(input)); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("input %q: err = %v, want ErrBadMagic", input, err)
		}
	}
}

func TestBadVersion(t *testing.T) {
	// Valid magic, version 99.
	input := append([]byte(magic), 0, 0, 0, 99)
	if _, _, err := ReadSections(bytes.NewReader(input)); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestTruncated(t *testing.T) {
	a := &fakeLayer{name: "a", state: bytes.Repeat([]byte("x"), 256)}
	reg := NewRegistry()
	reg.Register(a)
	var buf bytes.Buffer
	if err := reg.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Cut anywhere after the header but before the end: typed truncation.
	for _, cut := range []int{len(magic) + 2, len(magic) + 4, len(full) / 2, len(full) - 1} {
		err := reg.Load(bytes.NewReader(full[:cut]))
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

func TestUnknownAndMissingSections(t *testing.T) {
	a := &fakeLayer{name: "a", state: []byte("alpha")}
	b := &fakeLayer{name: "b", state: []byte("beta")}
	reg := NewRegistry()
	reg.Register(a)
	reg.Register(b)
	var buf bytes.Buffer
	if err := reg.Save(&buf); err != nil {
		t.Fatal(err)
	}

	// A reader that only knows "a" trips over "b".
	onlyA := NewRegistry()
	onlyA.Register(&fakeLayer{name: "a"})
	if err := onlyA.Load(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrUnknownSection) {
		t.Fatalf("err = %v, want ErrUnknownSection", err)
	}

	// A reader that also requires "c" misses it.
	withC := NewRegistry()
	withC.Register(&fakeLayer{name: "a"})
	withC.Register(&fakeLayer{name: "b"})
	withC.Register(&fakeLayer{name: "c"})
	if err := withC.Load(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrMissingSection) {
		t.Fatalf("err = %v, want ErrMissingSection", err)
	}

	// Unless "c" is optional, in which case it is skipped.
	withOptC := NewRegistry()
	withOptC.Register(&fakeLayer{name: "a"})
	withOptC.Register(&fakeLayer{name: "b"})
	withOptC.Register(&fakeLayer{name: "c", opt: true})
	if err := withOptC.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
}

func TestOptionalNilPayloadOmitted(t *testing.T) {
	reg := NewRegistry()
	reg.Register(&fakeLayer{name: "a", state: []byte("alpha")})
	reg.Register(&fakeLayer{name: "idle", opt: true}) // nil payload
	var buf bytes.Buffer
	if err := reg.Save(&buf); err != nil {
		t.Fatal(err)
	}
	_, order, err := ReadSections(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 1 || order[0] != "a" {
		t.Fatalf("sections = %v, want [a]", order)
	}
}

func TestSectionErrorNamesOffender(t *testing.T) {
	boom := errors.New("boom")
	reg := NewRegistry()
	reg.Register(&fakeLayer{name: "good", state: []byte("x")})
	reg.Register(&fakeLayer{name: "bad", state: []byte("y")})
	var buf bytes.Buffer
	if err := reg.Save(&buf); err != nil {
		t.Fatal(err)
	}

	reg2 := NewRegistry()
	reg2.Register(&fakeLayer{name: "good"})
	reg2.Register(&fakeLayer{name: "bad", loadErr: boom})
	err := reg2.Load(bytes.NewReader(buf.Bytes()))
	var se *SectionError
	if !errors.As(err, &se) || se.Section != "bad" || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want SectionError naming \"bad\" wrapping boom", err)
	}

	// Save-side failures are attributed the same way.
	regSave := NewRegistry()
	regSave.Register(&fakeLayer{name: "bad", saveErr: boom})
	err = regSave.Save(&bytes.Buffer{})
	se = nil
	if !errors.As(err, &se) || se.Section != "bad" {
		t.Fatalf("save err = %v, want SectionError naming \"bad\"", err)
	}
}

func TestRegisterReplacesSameSection(t *testing.T) {
	old := &fakeLayer{name: "s", state: []byte("old")}
	neu := &fakeLayer{name: "s", state: []byte("new")}
	reg := NewRegistry()
	reg.Register(&fakeLayer{name: "first", state: []byte("1")})
	reg.Register(old)
	reg.Register(neu)
	if got := reg.Sections(); len(got) != 2 || got[1] != "s" {
		t.Fatalf("sections = %v", got)
	}
	var buf bytes.Buffer
	if err := reg.Save(&buf); err != nil {
		t.Fatal(err)
	}
	payloads, _, err := ReadSections(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if string(payloads["s"]) != "new" {
		t.Fatalf("section s = %q, want the replacement's payload", payloads["s"])
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("hello"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read %q, %v", got, err)
	}

	// A failed write must leave the published file untouched and no temp
	// residue behind.
	boom := errors.New("boom")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, _ = w.Write([]byte("torn"))
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	got, err = os.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("after failed write: %q, %v", got, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries, want only the snapshot", len(entries))
	}
}
