// KV-backed incremental snapshots: instead of materializing one envelope
// blob, a Registry can write each section as its own key in a storage
// backend namespace. A manifest key records the format version, the
// section list, and a content hash per section; the next checkpoint
// skips every section whose hash is unchanged — warm histograms that saw
// no update between checkpoints cost no write at all. This is the
// "kvstore-backed incremental snapshot" seam the envelope's format
// version reserved: the store.Backend interface is the storage contract,
// so the same checkpoint streams into the embedded map today and a
// persistent service tomorrow.

package persist

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
)

// KV is the minimal storage surface incremental snapshots need.
// store.Backend satisfies it; the interface is declared here (consumer
// side) so persist stays free of storage dependencies.
type KV interface {
	Set(ns, k string, value any) error
	Get(ns, k string, out any) (bool, error)
	Keys(ns string) []string
	Delete(ns, k string) bool
}

// kvManifestKey names the manifest inside a snapshot namespace. The "!"
// prefix sorts it apart from section keys, which are all "layer/..."
// tags.
const kvManifestKey = "!manifest"

// kvManifest is the snapshot namespace's table of contents.
type kvManifest struct {
	// Version is the envelope format version the sections were written
	// under (payload encodings are version-independent; the field guards
	// future payload-format changes the same way the envelope does).
	Version uint32
	// Sections lists every section key present, in capture order.
	Sections []string
	// Sums maps each section to the SHA-256 of its payload, the
	// change-detection that makes checkpoints incremental.
	Sums map[string]string
}

// SaveKV checkpoints every registered layer into namespace ns of kv, one
// key per section, skipping sections whose payload hash matches the
// previous manifest (returned in skipped). Like Save, it quiesces
// background layers first and captures in reverse registration order, so
// a payment racing the checkpoint can only skew conservative. Stale keys
// from sections that disappeared (e.g. an optional section gone idle)
// are deleted. The manifest is written last: a crash mid-checkpoint
// leaves the previous manifest naming only fully-written sections —
// except for sections the torn checkpoint already overwrote, which is
// the same torn-write caveat any in-place store has; deployments that
// need atomic images keep using the enveloped WriteFileAtomic path.
func (r *Registry) SaveKV(kv KV, ns string) (written, skipped int, err error) {
	resume := r.QuiesceAll()
	defer resume()
	return r.CaptureKV(kv, ns)
}

// CaptureKV is SaveKV without the quiesce barrier, for callers that
// interleave their own barriers (core.Session holds its append mutex
// across the capture).
func (r *Registry) CaptureKV(kv KV, ns string) (written, skipped int, err error) {
	var prev kvManifest
	if _, err := kv.Get(ns, kvManifestKey, &prev); err != nil {
		// A previous manifest that exists but cannot be decoded (torn write,
		// corrupt byte) must not wedge checkpointing forever: treat it as
		// absent. Every section hash then misses, so the next checkpoint is
		// a full rewrite (skipped=0) that lays down a fresh manifest —
		// self-healing at the cost of one non-incremental save.
		prev = kvManifest{}
	}
	next := kvManifest{Version: FormatVersion, Sums: make(map[string]string)}
	for i := len(r.order) - 1; i >= 0; i-- {
		s := r.order[i]
		name := s.SnapshotSection()
		payload, err := s.SnapshotPayload()
		if err != nil {
			return written, skipped, &SectionError{Section: name, Err: err}
		}
		if payload == nil && optional(s) {
			continue
		}
		sum := payloadSum(payload)
		next.Sections = append(next.Sections, name)
		next.Sums[name] = sum
		if prev.Sums[name] == sum {
			// Skip only if the key actually survives in the store: a
			// deleted or evicted section key would otherwise never be
			// rewritten (its hash never changes) and every restore would
			// see a permanently torn checkpoint.
			var existing []byte
			if ok, err := kv.Get(ns, name, &existing); err == nil && ok && payloadSum(existing) == sum {
				skipped++
				continue
			}
		}
		if err := kv.Set(ns, name, payload); err != nil {
			return written, skipped, &SectionError{Section: name, Err: err}
		}
		written++
	}
	// Drop keys of sections no longer captured, so a reader never sees a
	// stale optional section resurrect.
	for _, name := range prev.Sections {
		if _, ok := next.Sums[name]; !ok {
			kv.Delete(ns, name)
		}
	}
	if err := kv.Set(ns, kvManifestKey, next); err != nil {
		return written, skipped, fmt.Errorf("persist: write manifest: %w", err)
	}
	return written, skipped, nil
}

// LoadKV restores every registered layer from namespace ns of kv, with
// the same validation discipline as Load: the manifest's version must be
// readable, unknown and missing sections are refused before any layer
// restores, and payload failures are SectionErrors naming the layer.
func (r *Registry) LoadKV(kv KV, ns string) error {
	var m kvManifest
	ok, err := kv.Get(ns, kvManifestKey, &m)
	if err != nil {
		return fmt.Errorf("persist: read manifest: %w", err)
	}
	if !ok {
		return fmt.Errorf("%w: namespace %q has no snapshot manifest", ErrMissingSection, ns)
	}
	if m.Version != FormatVersion && m.Version != formatV1 {
		return fmt.Errorf("%w: KV snapshot is v%d, this build reads v%d and v%d",
			ErrBadVersion, m.Version, formatV1, FormatVersion)
	}
	payloads := make(map[string][]byte, len(m.Sections))
	for _, name := range m.Sections {
		if _, owned := r.byName[name]; !owned {
			return fmt.Errorf("%w: %q", ErrUnknownSection, name)
		}
		var payload []byte
		ok, err := kv.Get(ns, name, &payload)
		if err != nil {
			return &SectionError{Section: name, Err: err}
		}
		if !ok {
			return fmt.Errorf("%w: %q named by the manifest but absent (torn checkpoint)",
				ErrTruncated, name)
		}
		payloads[name] = payload
	}
	for _, s := range r.order {
		if _, ok := payloads[s.SnapshotSection()]; !ok && !optional(s) {
			return fmt.Errorf("%w: %q", ErrMissingSection, s.SnapshotSection())
		}
	}
	for _, s := range r.order {
		name := s.SnapshotSection()
		payload, ok := payloads[name]
		if !ok {
			continue // optional, absent
		}
		if err := s.RestorePayload(payload); err != nil {
			var se *SectionError
			if errors.As(err, &se) {
				return err
			}
			return &SectionError{Section: name, Err: err}
		}
	}
	return nil
}

// payloadSum hashes a section payload for the manifest.
func payloadSum(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}
