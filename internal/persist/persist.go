// Package persist is Turbo's durable-state subsystem: a versioned,
// section-tagged snapshot envelope plus the registry that orchestrates
// saving and restoring every stateful layer of a session.
//
// The paper's whole value proposition is accumulated state — exact-cache
// entries, PMW/tree histograms, and spent privacy budget — so a restart
// must not forfeit it (§5 notes Redis "can be replaced with a persistent,
// consistent and durable storage service"; this package is that seam).
// Each stateful layer (accountant blocks, exact caches, the tree, the
// streaming ingestor) implements Snapshotter and contributes one named
// section; the envelope carries them behind a magic header and a format
// version, so a future storage backend (e.g. kvstore-backed snapshots)
// plugs in by bumping the version rather than breaking old files.
//
// # Envelope format
//
//	offset 0: magic "TURBOSNP" (8 bytes, raw)
//	offset 8: format version (uint32, big-endian)
//	then:     a gob stream of {Name string; Payload []byte} sections,
//	          terminated by an explicit end marker (Name == "");
//	          gzip-compressed in v2 (raw gob in v1)
//
// The raw magic lets a reader reject non-snapshot input with a typed
// error instead of a confusing gob failure; the explicit end marker lets
// it distinguish a cleanly-terminated snapshot from a truncated one.
// Section payloads are opaque to the envelope: each layer encodes and
// decodes its own bytes, so a payload failure can be attributed to the
// offending section by name (SectionError).
//
// Version history: v1 wrote the section stream as raw gob; v2 (current)
// wraps it in gzip — histograms and Rényi curves are float-heavy and
// compress several-fold. Readers accept both; writers emit v2 unless a
// version is forced (NewWriterVersion, for compatibility tests).
//
// Besides the streamed envelope, a Registry can snapshot INTO a storage
// backend (SaveKV/LoadKV): each section becomes its own key in a
// namespace, with a manifest recording section hashes, so an unchanged
// section is skipped on the next checkpoint — the kvstore-backed
// incremental-snapshot seam.
package persist

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// magic identifies a Turbo snapshot stream. Exactly 8 bytes.
const magic = "TURBOSNP"

// FormatVersion is the envelope format written by this build: v2, whose
// section stream is gzip-compressed. Readers also accept v1 (raw gob)
// envelopes from earlier builds and refuse anything else with
// ErrBadVersion.
const FormatVersion uint32 = 2

// formatV1 is the uncompressed envelope of earlier builds, still readable.
const formatV1 uint32 = 1

// Typed envelope errors: LoadState callers (and the HTTP /restore
// endpoint) branch on these instead of string-matching gob failures.
var (
	// ErrBadMagic reports input that is not a Turbo snapshot at all.
	ErrBadMagic = errors.New("persist: not a Turbo snapshot (bad magic)")
	// ErrBadVersion reports a snapshot from an incompatible format version.
	ErrBadVersion = errors.New("persist: unsupported snapshot format version")
	// ErrTruncated reports a stream that ended before its end marker.
	ErrTruncated = errors.New("persist: truncated snapshot")
	// ErrUnknownSection reports a section no registered layer owns.
	ErrUnknownSection = errors.New("persist: unknown snapshot section")
	// ErrMissingSection reports a required section absent from the stream.
	ErrMissingSection = errors.New("persist: snapshot lacks required section")
	// ErrDuplicateSection reports a section tag appearing twice.
	ErrDuplicateSection = errors.New("persist: duplicate snapshot section")
)

// SectionError attributes a payload encode/decode/restore failure to the
// offending section by name.
type SectionError struct {
	Section string
	Err     error
}

// Error implements error.
func (e *SectionError) Error() string {
	return fmt.Sprintf("persist: section %q: %v", e.Section, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *SectionError) Unwrap() error { return e.Err }

// Snapshotter is one stateful layer's contribution to a snapshot: a
// uniquely-tagged section whose payload the layer encodes and decodes
// itself. Restore runs on a freshly-constructed layer, before it serves
// any traffic; on error the layer's state is undefined and the owning
// session must be discarded.
type Snapshotter interface {
	// SnapshotSection returns the layer's unique section tag
	// (conventionally "layer/detail", e.g. "accountant/block").
	SnapshotSection() string
	// SnapshotPayload encodes the layer's current state. An optional
	// section (see OptionalSection) may return (nil, nil) to omit itself
	// from the snapshot entirely.
	SnapshotPayload() ([]byte, error)
	// RestorePayload decodes a previously-encoded payload into the layer.
	RestorePayload(payload []byte) error
}

// OptionalSection marks a Snapshotter whose section may legitimately be
// absent from a snapshot (e.g. the streaming ingestor's pending queue:
// sessions without an ingestor never write it, and an idle ingestor omits
// it so its snapshots restore into ingestor-less sessions).
type OptionalSection interface {
	SnapshotOptional() bool
}

// Quiescer is optionally implemented by layers with background work that
// must pause around a snapshot (the streaming ingestor's epoch worker).
// Quiesce blocks until the layer is at a section boundary — no epoch
// mid-application — and returns the function that resumes it. Resume
// functions must be safe to call exactly once; Registry.Save handles the
// pairing.
type Quiescer interface {
	Quiesce() (resume func())
}

// section is the gob wire format of one envelope entry. A Name of ""
// is the end marker.
type section struct {
	Name    string
	Payload []byte
}

// Writer writes a snapshot envelope section by section.
type Writer struct {
	enc *gob.Encoder
	// gz is the compression layer of a v2 envelope (nil for v1); Close
	// must flush it after the end marker.
	gz *gzip.Writer
}

// NewWriter writes the magic header and current format version to w and
// returns a section writer over it.
func NewWriter(w io.Writer) (*Writer, error) {
	return NewWriterVersion(w, FormatVersion)
}

// NewWriterVersion writes an envelope at an explicit format version —
// the current one, or v1 for producing uncompressed envelopes that
// compatibility tests (and downgrade paths) feed to old readers.
func NewWriterVersion(w io.Writer, version uint32) (*Writer, error) {
	if version != FormatVersion && version != formatV1 {
		return nil, fmt.Errorf("%w: cannot write v%d", ErrBadVersion, version)
	}
	if _, err := io.WriteString(w, magic); err != nil {
		return nil, fmt.Errorf("persist: write magic: %w", err)
	}
	if err := binary.Write(w, binary.BigEndian, version); err != nil {
		return nil, fmt.Errorf("persist: write version: %w", err)
	}
	if version == formatV1 {
		return &Writer{enc: gob.NewEncoder(w)}, nil
	}
	gz := gzip.NewWriter(w)
	return &Writer{enc: gob.NewEncoder(gz), gz: gz}, nil
}

// WriteSection appends one named section. Names must be non-empty and
// unique within a snapshot; the Registry enforces uniqueness.
func (w *Writer) WriteSection(name string, payload []byte) error {
	if name == "" {
		return errors.New("persist: empty section name")
	}
	if err := w.enc.Encode(section{Name: name, Payload: payload}); err != nil {
		return &SectionError{Section: name, Err: err}
	}
	return nil
}

// Close writes the end marker and flushes the compression layer. The
// underlying writer is not closed.
func (w *Writer) Close() error {
	if err := w.enc.Encode(section{}); err != nil {
		return fmt.Errorf("persist: write end marker: %w", err)
	}
	if w.gz != nil {
		if err := w.gz.Close(); err != nil {
			return fmt.Errorf("persist: flush compressed envelope: %w", err)
		}
	}
	return nil
}

// ReadSections validates the envelope header and reads every section,
// returning payloads by name plus the on-stream order. It fails with
// ErrBadMagic, ErrBadVersion, ErrTruncated, or ErrDuplicateSection.
func ReadSections(r io.Reader) (map[string][]byte, []string, error) {
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(r, head); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			// Too short to even carry the magic: not a snapshot.
			return nil, nil, ErrBadMagic
		}
		// A genuine read failure is not a verdict about the content.
		return nil, nil, fmt.Errorf("persist: read snapshot header: %w", err)
	}
	if string(head) != magic {
		return nil, nil, ErrBadMagic
	}
	var version uint32
	if err := binary.Read(r, binary.BigEndian, &version); err != nil {
		return nil, nil, fmt.Errorf("%w: header ends before format version", ErrTruncated)
	}
	var gz *gzip.Reader
	switch version {
	case formatV1:
		// Raw gob stream from an earlier build: still accepted.
	case FormatVersion:
		var err error
		if gz, err = gzip.NewReader(r); err != nil {
			return nil, nil, fmt.Errorf("%w: compressed stream ends before its header (%v)", ErrTruncated, err)
		}
		r = gz
	default:
		return nil, nil, fmt.Errorf("%w: snapshot is v%d, this build reads v%d and v%d",
			ErrBadVersion, version, formatV1, FormatVersion)
	}
	dec := gob.NewDecoder(r)
	payloads := make(map[string][]byte)
	var order []string
	for {
		var s section
		if err := dec.Decode(&s); err != nil {
			// Any decode failure before the end marker — io.EOF included —
			// means the stream stopped mid-snapshot.
			return nil, nil, fmt.Errorf("%w: stream ends before the end marker (%v)", ErrTruncated, err)
		}
		if s.Name == "" {
			if gz != nil {
				// Drain the compression layer: the end marker can decode
				// from a stream cut before the gzip trailer, and only the
				// trailer's checksum proves the snapshot arrived whole.
				if _, err := io.ReadFull(gz, make([]byte, 1)); !errors.Is(err, io.EOF) {
					return nil, nil, fmt.Errorf("%w: compressed stream ends before its trailer (%v)", ErrTruncated, err)
				}
			}
			return payloads, order, nil
		}
		if _, dup := payloads[s.Name]; dup {
			return nil, nil, fmt.Errorf("%w: %q", ErrDuplicateSection, s.Name)
		}
		payloads[s.Name] = s.Payload
		order = append(order, s.Name)
	}
}

// Registry holds the Snapshotters of one session in registration order,
// which is restore order (validation sections first, so a mismatched
// snapshot fails before any machinery state moves); Save captures in the
// reverse order (see Save for why).
type Registry struct {
	order  []Snapshotter
	byName map[string]Snapshotter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]Snapshotter)}
}

// Register adds a layer at the end of the restore order. Registering a
// section tag again replaces the previous owner in place (keeping its
// position): the newest layer owns the section, which is the semantic a
// re-created streaming ingestor over one session needs.
func (r *Registry) Register(s Snapshotter) {
	name := s.SnapshotSection()
	if name == "" {
		panic("persist: Snapshotter with empty section name")
	}
	if _, ok := r.byName[name]; ok {
		for i, old := range r.order {
			if old.SnapshotSection() == name {
				r.order[i] = s
				break
			}
		}
	} else {
		r.order = append(r.order, s)
	}
	r.byName[name] = s
}

// Sections returns the registered section tags in order.
func (r *Registry) Sections() []string {
	out := make([]string, len(r.order))
	for i, s := range r.order {
		out[i] = s.SnapshotSection()
	}
	return out
}

// optional reports whether a Snapshotter's section may be absent.
func optional(s Snapshotter) bool {
	o, ok := s.(OptionalSection)
	return ok && o.SnapshotOptional()
}

// Save quiesces every Quiescer (in registration order; resumed in
// reverse), then writes one section per registered layer. An optional
// layer returning a nil payload is omitted.
//
// Sections are CAPTURED in reverse registration order — machinery state
// (caches, histograms: the released results) before the accountants —
// while Load restores in registration order regardless of on-stream
// order. The reversal is what makes a payment racing the snapshot skew
// conservative only: every mechanism pays before it caches its result,
// so a release captured in an earlier-read cache section already has
// its charge in the later-read accountant sections. The opposite order
// could capture a cached DP release whose budget charge is missing,
// and a restore would then under-count privacy spend. (A fully
// consistent image still wants no in-flight queries; the race can at
// worst record spend whose result was not yet cached.)
func (r *Registry) Save(w io.Writer) error {
	resume := r.QuiesceAll()
	defer resume()
	return r.Capture(w)
}

// QuiesceAll pauses every registered Quiescer in registration order and
// returns the single function that resumes them all (reverse order,
// safe to call once). Callers that must interleave their own barriers
// between the quiesce and the capture (the session holds its append
// mutex) use QuiesceAll + Capture instead of Save.
func (r *Registry) QuiesceAll() (resume func()) {
	var resumes []func()
	for _, s := range r.order {
		if q, ok := s.(Quiescer); ok {
			resumes = append(resumes, q.Quiesce())
		}
	}
	return func() {
		for i := len(resumes) - 1; i >= 0; i-- {
			resumes[i]()
		}
	}
}

// Capture writes every section without quiescing anything; see Save
// for the capture-order contract.
func (r *Registry) Capture(w io.Writer) error {
	return r.CaptureVersion(w, FormatVersion)
}

// CaptureVersion is Capture at an explicit envelope version (v1 writes
// the uncompressed legacy format, for compatibility tests and downgrade
// paths).
func (r *Registry) CaptureVersion(w io.Writer, version uint32) error {
	sw, err := NewWriterVersion(w, version)
	if err != nil {
		return err
	}
	for i := len(r.order) - 1; i >= 0; i-- {
		s := r.order[i]
		name := s.SnapshotSection()
		payload, err := s.SnapshotPayload()
		if err != nil {
			return &SectionError{Section: name, Err: err}
		}
		if payload == nil && optional(s) {
			continue
		}
		if err := sw.WriteSection(name, payload); err != nil {
			return err
		}
	}
	return sw.Close()
}

// Load reads a snapshot and restores every registered layer from its
// section, in registration order regardless of on-stream order. A
// section with no registered owner is ErrUnknownSection; a registered
// non-optional layer with no section is ErrMissingSection; a payload
// failure is a SectionError naming the layer. Restore is not
// transactional: on error the layers' state is undefined and the owning
// session must be discarded.
func (r *Registry) Load(rd io.Reader) error {
	payloads, names, err := ReadSections(rd)
	if err != nil {
		return err
	}
	// Refuse unknown and missing sections BEFORE any layer restores: a
	// recognizably-foreign snapshot must be a pure validation failure,
	// not a fully-mutated session followed by an error.
	for _, name := range names {
		if _, ok := r.byName[name]; !ok {
			return fmt.Errorf("%w: %q", ErrUnknownSection, name)
		}
	}
	for _, s := range r.order {
		if _, ok := payloads[s.SnapshotSection()]; !ok && !optional(s) {
			return fmt.Errorf("%w: %q", ErrMissingSection, s.SnapshotSection())
		}
	}
	for _, s := range r.order {
		name := s.SnapshotSection()
		payload, ok := payloads[name]
		if !ok {
			continue // optional, absent
		}
		if err := s.RestorePayload(payload); err != nil {
			var se *SectionError
			if errors.As(err, &se) {
				return err
			}
			return &SectionError{Section: name, Err: err}
		}
	}
	return nil
}

// Encode gob-encodes one section payload. Layers use it so every payload
// shares one codec (and one failure shape).
func Encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode gob-decodes one section payload into out (a pointer).
func Decode(payload []byte, out any) error {
	return gob.NewDecoder(bytes.NewReader(payload)).Decode(out)
}

// WriteFileAtomic writes a snapshot (or any stream) to path via a
// temporary file in the same directory, fsync, and rename, so a crash
// mid-write never leaves a torn snapshot where a valid one stood — the
// write discipline the server's checkpoint path and turbo-server's
// -state flag rely on.
func WriteFileAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".turbosnap-*")
	if err != nil {
		return fmt.Errorf("persist: create temp snapshot: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("persist: sync snapshot: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("persist: close snapshot: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("persist: publish snapshot: %w", err)
	}
	// Make the rename itself durable: without a directory fsync a crash
	// right after "checkpoint written" could still resurface the old (or
	// no) snapshot at next boot on some filesystems.
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}
