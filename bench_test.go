// Benchmarks regenerating every table and figure of the Turbo paper's
// evaluation, one benchmark per figure (see DESIGN.md §4 for the
// experiment index and EXPERIMENTS.md for paper-vs-measured results).
//
// Each benchmark runs the corresponding experiment at ScaleSmall — the
// same qualitative shapes as the paper at seconds of wall-clock — and
// reports the headline metric of that figure via b.ReportMetric:
//
//   - budget curves report the final consumed budget per system and
//     Turbo's improvement factor over the best baseline;
//   - the convergence study reports updates-to-convergence at the
//     theoretical and the best empirical learning rate;
//   - the runtime study reports ms per execution path.
//
// Full paper-scale runs: go run ./cmd/turbo-bench -exp=all -scale=paper.
package repro

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/bench"
)

// run executes an experiment once per benchmark iteration and returns the
// last result.
func run(b *testing.B, exp func(bench.Scale) (bench.Result, error)) bench.Result {
	b.Helper()
	var res bench.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = exp(bench.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
	}
	if os.Getenv("TURBO_BENCH_DUMP") != "" {
		_ = res.WriteTable(os.Stdout)
	}
	return res
}

// reportFinals publishes each series' final budget as a metric.
func reportFinals(b *testing.B, res bench.Result) {
	for _, s := range res.Series {
		b.ReportMetric(s.Last(), s.Name+"-final")
	}
}

// BenchmarkScaling measures sharded-pipeline throughput against the
// global-mutex seed architecture across goroutine counts (the concurrency
// refactor's headline numbers; see ARCHITECTURE.md).
func BenchmarkScaling(b *testing.B) {
	res := run(b, bench.Scaling)
	for _, s := range res.Series {
		for _, p := range s.Points {
			b.ReportMetric(p.Y, fmt.Sprintf("%s-%dg", s.Name, int(p.X)))
		}
	}
}

func BenchmarkFig3Demo(b *testing.B) {
	res := run(b, bench.Fig3)
	reportFinals(b, res)
	b.ReportMetric(res.SeriesByName("laplace").Last()/res.SeriesByName("pmw-bypass").Last(), "bypass-vs-laplace-x")
	b.ReportMetric(res.SeriesByName("pmw").Last()/res.SeriesByName("pmw-bypass").Last(), "bypass-vs-pmw-x")
}

func BenchmarkFig8a(b *testing.B) {
	res := run(b, bench.Fig8a)
	reportFinals(b, res)
	b.ReportMetric(res.Improvement("turbo"), "turbo-improvement-x")
}

func BenchmarkFig8b(b *testing.B) {
	res := run(b, bench.Fig8b)
	reportFinals(b, res)
	b.ReportMetric(res.Improvement("turbo"), "turbo-improvement-x")
}

func BenchmarkFig8c(b *testing.B) {
	res := run(b, bench.Fig8c)
	reportFinals(b, res)
	b.ReportMetric(res.Improvement("turbo"), "turbo-improvement-x")
}

func BenchmarkFig8d(b *testing.B) {
	res := run(b, bench.Fig8d)
	// Convergence at the theoretical lr (α/8 = 0.00625) vs the best lr.
	byp := res.SeriesByName("pmw-bypass")
	if len(byp.Points) > 0 {
		b.ReportMetric(byp.Points[0].Y, "bypass-updates-at-lr-alpha8")
		best := byp.Points[0].Y
		for _, p := range byp.Points {
			if p.Y < best {
				best = p.Y
			}
		}
		b.ReportMetric(best, "bypass-updates-at-best-lr")
	}
}

func BenchmarkFig9a(b *testing.B) {
	res := run(b, bench.Fig9a)
	reportFinals(b, res)
}

func BenchmarkFig9b(b *testing.B) {
	res := run(b, bench.Fig9b)
	reportFinals(b, res)
}

func BenchmarkQ4Heuristics(b *testing.B) {
	res := run(b, func(sc bench.Scale) (bench.Result, error) { return bench.Q4Heuristics(sc, 1) })
	// Best budget per design across the C0 grid, plus the adaptive
	// design's spread (its ease-of-configuration claim).
	for _, s := range res.Series {
		best, worst := s.Points[0].Y, s.Points[0].Y
		for _, p := range s.Points {
			if p.Y < best {
				best = p.Y
			}
			if p.Y > worst {
				worst = p.Y
			}
		}
		b.ReportMetric(best, s.Name+"-best")
		if s.Name == "adaptive-per-bin" || s.Name == "static-per-bin" {
			b.ReportMetric(worst/best, s.Name+"-spread-x")
		}
	}
}

func BenchmarkFig10a(b *testing.B) {
	res := run(b, bench.Fig10a)
	reportFinals(b, res)
	b.ReportMetric(res.Improvement("turbo"), "turbo-improvement-x")
}

func BenchmarkFig10b(b *testing.B) {
	res := run(b, bench.Fig10b)
	reportFinals(b, res)
	b.ReportMetric(res.Improvement("turbo"), "turbo-improvement-x")
}

func BenchmarkFig10c(b *testing.B) {
	res := run(b, bench.Fig10c)
	reportFinals(b, res)
	b.ReportMetric(res.Improvement("turbo"), "turbo-improvement-x")
}

func BenchmarkQ6TreeVsFlat(b *testing.B) {
	res := run(b, bench.Q6TreeVsFlat)
	tree := res.SeriesByName("tree")
	flat := res.SeriesByName("flat")
	if len(tree.Points) > 0 && len(flat.Points) > 0 {
		b.ReportMetric(flat.Points[0].Y/tree.Points[0].Y, "small-window-flat-vs-tree")
		b.ReportMetric(flat.Last()/tree.Last(), "large-window-flat-vs-tree")
	}
}

func BenchmarkFig11a(b *testing.B) {
	res := run(b, bench.Fig11a)
	reportFinals(b, res)
	b.ReportMetric(res.Improvement("turbo-warm"), "warm-improvement-x")
}

func BenchmarkFig11b(b *testing.B) {
	res := run(b, bench.Fig11b)
	reportFinals(b, res)
	b.ReportMetric(res.Improvement("turbo-warm"), "warm-improvement-x")
}

func BenchmarkFig11c(b *testing.B) {
	res := run(b, bench.Fig11c)
	reportFinals(b, res)
	b.ReportMetric(res.Improvement("turbo-warm"), "warm-improvement-x")
}

func BenchmarkFig11dRuntime(b *testing.B) {
	res := run(b, bench.Fig11d)
	paths := []string{"exact-hit", "r1", "r2", "r3"}
	for _, s := range res.Series {
		for _, p := range s.Points {
			b.ReportMetric(p.Y, fmt.Sprintf("%s-%s-ms", s.Name, paths[int(p.X)]))
		}
	}
}

func BenchmarkMemory(b *testing.B) {
	res := run(b, bench.Memory)
	pts := res.Series[0].Points
	if len(pts) == 2 {
		b.ReportMetric(pts[0].Y/1e6, "covid-MB")
		b.ReportMetric(pts[1].Y/1e6, "citibike-MB")
	}
}

func BenchmarkAblationTau(b *testing.B) {
	res := run(b, bench.TauSweep)
	for _, p := range res.SeriesByName("final-budget").Points {
		b.ReportMetric(p.Y, fmt.Sprintf("budget-tau-%g", p.X))
	}
}

func BenchmarkAblationWarmStart(b *testing.B) {
	res := run(b, bench.WarmStartPriors)
	pts := res.SeriesByName("updates-to-converge").Points
	labels := []string{"uniform", "good-prior", "wrong-prior"}
	for _, p := range pts {
		b.ReportMetric(p.Y, labels[int(p.X)]+"-updates")
	}
}

func BenchmarkAblationRDPvsPure(b *testing.B) {
	res := run(b, bench.RDPvsPure)
	pts := res.Series[0].Points
	if len(pts) == 2 {
		b.ReportMetric(pts[0].Y, "pure-payments")
		b.ReportMetric(pts[1].Y, "rdp-payments")
		b.ReportMetric(pts[1].Y/pts[0].Y, "rdp-advantage-x")
	}
}

func BenchmarkAblationDrain(b *testing.B) {
	res := run(b, bench.AdversarialDrain)
	b.ReportMetric(res.SeriesByName("no-cutoff").Last(), "drain-budget")
	b.ReportMetric(res.SeriesByName("cutoff-k500").Last(), "cutoff-budget")
}

func BenchmarkAppendixC(b *testing.B) {
	res := run(b, bench.AppendixC)
	an := res.SeriesByName("analytic-crossover").Points
	if len(an) == 3 {
		b.ReportMetric(an[0].Y, "crossover-queries-X128")
	}
	sim := res.SeriesByName("simulated-crossover-n128").Points
	if len(sim) == 1 {
		b.ReportMetric(sim[0].Y, "simulated-crossover")
	}
}
